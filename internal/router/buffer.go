// Package router provides the building blocks of the wormhole router
// microarchitecture: fixed-capacity flit FIFOs (virtual-channel buffers),
// sender-side virtual-channel allocation state, and round-robin arbiters.
//
// The cycle-level composition of these pieces — virtual-channel allocation,
// separable switch allocation and two-phase flit movement — lives in
// internal/sim; this package holds the stateful primitives and their
// invariants.
package router

import (
	"fmt"

	"wormnet/internal/message"
)

// Buffer is a fixed-capacity FIFO of flits: one virtual-channel buffer.
// The zero value is not usable; construct with NewBuffer.
type Buffer struct {
	flits []message.Flit
	head  int // index of front element
	size  int
}

// NewBuffer returns an empty buffer holding at most capacity flits.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		panic(fmt.Sprintf("router: buffer capacity %d < 1", capacity))
	}
	return &Buffer{flits: make([]message.Flit, capacity)}
}

// Cap returns the buffer capacity in flits.
func (b *Buffer) Cap() int { return len(b.flits) }

// Len returns the number of buffered flits.
func (b *Buffer) Len() int { return b.size }

// Empty reports whether the buffer holds no flits.
func (b *Buffer) Empty() bool { return b.size == 0 }

// Full reports whether the buffer is at capacity.
func (b *Buffer) Full() bool { return b.size == len(b.flits) }

// Push appends a flit at the back. It panics if the buffer is full; the
// simulator's credit check must prevent that.
func (b *Buffer) Push(f message.Flit) {
	if b.Full() {
		panic("router: push into full buffer")
	}
	b.flits[(b.head+b.size)%len(b.flits)] = f
	b.size++
}

// Front returns the flit at the front. It panics if the buffer is empty.
func (b *Buffer) Front() message.Flit {
	if b.Empty() {
		panic("router: front of empty buffer")
	}
	return b.flits[b.head]
}

// Pop removes and returns the front flit. It panics if the buffer is empty.
func (b *Buffer) Pop() message.Flit {
	f := b.Front()
	b.flits[b.head] = message.Flit{} // release the *Message reference
	b.head = (b.head + 1) % len(b.flits)
	b.size--
	return f
}

// RemoveMessage removes every flit belonging to message id and returns how
// many were removed. It is used by deadlock recovery, which tears a
// presumed-deadlocked message out of the network. Because a virtual-channel
// buffer only ever holds flits of a single message at a time (allocation
// requires an empty buffer), this either empties the buffer or removes
// nothing; the implementation nevertheless handles interleavings defensively.
func (b *Buffer) RemoveMessage(id message.ID) int {
	removed := 0
	n := b.size
	for i := 0; i < n; i++ {
		f := b.Pop()
		if f.Msg.ID == id {
			removed++
			continue
		}
		b.Push(f)
	}
	return removed
}

// FrontMessage returns the message owning the front flit, or nil if empty.
func (b *Buffer) FrontMessage() *message.Message {
	if b.Empty() {
		return nil
	}
	return b.flits[b.head].Msg
}
