// Package router provides the building blocks of the wormhole router
// microarchitecture: fixed-capacity flit FIFOs (virtual-channel buffers),
// sender-side virtual-channel allocation state, and round-robin arbiters.
//
// The cycle-level composition of these pieces — virtual-channel allocation,
// separable switch allocation and two-phase flit movement — lives in
// internal/sim; this package holds the stateful primitives and their
// invariants.
package router

import (
	"fmt"

	"wormnet/internal/message"
)

// Buffer is a fixed-capacity FIFO of flits: one virtual-channel buffer.
// The zero value is not usable; construct with NewBuffer, or initialise a
// value in place with Init (the simulation engine stores buffers by value
// in one contiguous slice per node, so the hot path walks them linearly).
type Buffer struct {
	flits []message.Flit
	head  int32 // index of front element
	tail  int32 // index one past the back element (mod capacity)
	size  int32
}

// NewBuffer returns an empty buffer holding at most capacity flits.
func NewBuffer(capacity int) *Buffer {
	b := &Buffer{}
	b.Init(capacity)
	return b
}

// Init (re-)initialises b in place as an empty buffer of the given
// capacity, allocating only the flit storage.
func (b *Buffer) Init(capacity int) {
	if capacity < 1 {
		panic(fmt.Sprintf("router: buffer capacity %d < 1", capacity))
	}
	*b = Buffer{flits: make([]message.Flit, capacity)}
}

// InitOver (re-)initialises b in place as an empty buffer whose flit
// storage is the caller-provided slice; its length is the capacity. The
// simulation engine uses it to pack every buffer of a run into one
// contiguous arena.
func (b *Buffer) InitOver(storage []message.Flit) {
	if len(storage) < 1 {
		panic("router: buffer storage must hold at least one flit")
	}
	*b = Buffer{flits: storage}
}

// Cap returns the buffer capacity in flits.
func (b *Buffer) Cap() int { return len(b.flits) }

// Len returns the number of buffered flits.
func (b *Buffer) Len() int { return int(b.size) }

// Empty reports whether the buffer holds no flits.
func (b *Buffer) Empty() bool { return b.size == 0 }

// Full reports whether the buffer is at capacity.
func (b *Buffer) Full() bool { return int(b.size) == len(b.flits) }

// Push appends a flit at the back. It panics if the buffer is full; the
// simulator's credit check must prevent that.
func (b *Buffer) Push(f message.Flit) {
	if b.Full() {
		panic("router: push into full buffer")
	}
	b.flits[b.tail] = f
	b.tail++
	if int(b.tail) == len(b.flits) {
		b.tail = 0
	}
	b.size++
}

// Front returns the flit at the front. It panics if the buffer is empty.
func (b *Buffer) Front() message.Flit {
	if b.Empty() {
		panic("router: front of empty buffer")
	}
	return b.flits[b.head]
}

// Pop removes and returns the front flit. It panics if the buffer is empty.
// The vacated slot is not cleared: slots outside [head, head+size) are never
// read, and the stale *Message reference keeps nothing extra alive — the
// simulator pools and reuses messages rather than freeing them.
func (b *Buffer) Pop() message.Flit {
	f := b.Front()
	b.head++
	if int(b.head) == len(b.flits) {
		b.head = 0
	}
	b.size--
	return f
}

// RemoveMessage removes every flit belonging to message id and returns how
// many were removed. It is used by deadlock recovery, which tears a
// presumed-deadlocked message out of the network. Because a virtual-channel
// buffer only ever holds flits of a single message at a time (allocation
// requires an empty buffer), this either empties the buffer or removes
// nothing; the implementation nevertheless handles interleavings defensively.
func (b *Buffer) RemoveMessage(id message.ID) int {
	removed := 0
	n := int(b.size)
	for i := 0; i < n; i++ {
		f := b.Pop()
		if f.Msg.ID == id {
			removed++
			continue
		}
		b.Push(f)
	}
	return removed
}

// At returns the i-th buffered flit counting from the front (0 = front),
// without removing it. It panics if i is out of range. Snapshot support:
// the engine walks buffer contents in FIFO order without mutating them.
func (b *Buffer) At(i int) message.Flit {
	if i < 0 || int32(i) >= b.size {
		panic(fmt.Sprintf("router: buffer index %d out of range [0,%d)", i, b.size))
	}
	j := b.head + int32(i)
	if j >= int32(len(b.flits)) {
		j -= int32(len(b.flits))
	}
	return b.flits[j]
}

// FrontMessage returns the message owning the front flit, or nil if empty.
func (b *Buffer) FrontMessage() *message.Message {
	if b.Empty() {
		return nil
	}
	return b.flits[b.head].Msg
}
