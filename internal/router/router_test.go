package router

import (
	"testing"
	"testing/quick"

	"wormnet/internal/message"
)

func msg(id message.ID, length int) *message.Message {
	return message.New(id, 0, 1, length, 0)
}

func TestBufferFIFO(t *testing.T) {
	b := NewBuffer(4)
	m := msg(1, 4)
	for i := 0; i < 4; i++ {
		b.Push(message.MakeFlit(m, i))
	}
	if !b.Full() || b.Len() != 4 {
		t.Fatalf("Len=%d Full=%v", b.Len(), b.Full())
	}
	for i := 0; i < 4; i++ {
		f := b.Pop()
		if f.Seq != int32(i) {
			t.Fatalf("pop %d got seq %d", i, f.Seq)
		}
	}
	if !b.Empty() {
		t.Fatal("not empty after draining")
	}
}

func TestBufferWrapAround(t *testing.T) {
	b := NewBuffer(3)
	m := msg(1, 100)
	seq := 0
	// Interleave pushes and pops to force wrap.
	for round := 0; round < 10; round++ {
		for b.Len() < b.Cap() {
			b.Push(message.MakeFlit(m, seq))
			seq++
		}
		b.Pop()
		b.Pop()
	}
	// Remaining flits must still come out in order.
	prev := int32(-1)
	for !b.Empty() {
		f := b.Pop()
		if f.Seq <= prev {
			t.Fatalf("order violated: %d after %d", f.Seq, prev)
		}
		prev = f.Seq
	}
}

func TestBufferPanics(t *testing.T) {
	check := func(name string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		})
	}
	check("cap", func() { NewBuffer(0) })
	check("push full", func() {
		b := NewBuffer(1)
		b.Push(message.MakeFlit(msg(1, 2), 0))
		b.Push(message.MakeFlit(msg(1, 2), 1))
	})
	check("pop empty", func() { NewBuffer(1).Pop() })
	check("front empty", func() { NewBuffer(1).Front() })
}

func TestBufferFrontMessage(t *testing.T) {
	b := NewBuffer(2)
	if b.FrontMessage() != nil {
		t.Fatal("empty buffer has a front message")
	}
	m := msg(7, 2)
	b.Push(message.MakeFlit(m, 0))
	if b.FrontMessage() != m {
		t.Fatal("front message mismatch")
	}
	if b.Front().Msg.ID != 7 {
		t.Fatal("front flit mismatch")
	}
}

func TestBufferRemoveMessage(t *testing.T) {
	b := NewBuffer(4)
	m1, m2 := msg(1, 2), msg(2, 2)
	b.Push(message.MakeFlit(m1, 0))
	b.Push(message.MakeFlit(m2, 0))
	b.Push(message.MakeFlit(m1, 1))
	b.Push(message.MakeFlit(m2, 1))
	if got := b.RemoveMessage(1); got != 2 {
		t.Fatalf("removed %d want 2", got)
	}
	if b.Len() != 2 {
		t.Fatalf("Len=%d want 2", b.Len())
	}
	// Remaining flits keep order and belong to m2.
	if f := b.Pop(); f.Msg.ID != 2 || f.Seq != 0 {
		t.Fatalf("wrong flit %v", f)
	}
	if f := b.Pop(); f.Msg.ID != 2 || f.Seq != 1 {
		t.Fatalf("wrong flit %v", f)
	}
	if got := b.RemoveMessage(9); got != 0 {
		t.Fatalf("removed %d from empty", got)
	}
}

// Property: a Buffer behaves exactly like a slice-based FIFO queue under
// arbitrary interleavings of push/pop.
func TestBufferMatchesModel(t *testing.T) {
	f := func(ops []bool) bool {
		b := NewBuffer(4)
		var model []message.Flit
		m := msg(1, 1<<20)
		seq := 0
		for _, push := range ops {
			if push {
				if b.Full() {
					continue
				}
				fl := message.MakeFlit(m, seq)
				seq++
				b.Push(fl)
				model = append(model, fl)
			} else {
				if b.Empty() {
					if len(model) != 0 {
						return false
					}
					continue
				}
				got := b.Pop()
				want := model[0]
				model = model[1:]
				if got != want {
					return false
				}
			}
			if b.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOutVCLifecycle(t *testing.T) {
	var v OutVC
	if !v.Free() || v.Owner() != nil {
		t.Fatal("zero OutVC must be free")
	}
	m := msg(1, 4)
	v.Allocate(m)
	if v.Free() || v.Owner() != m {
		t.Fatal("allocation not recorded")
	}
	v.Release()
	if !v.Free() {
		t.Fatal("release failed")
	}
	v.Release() // releasing free VC is a no-op
}

func TestOutVCDoubleAllocatePanics(t *testing.T) {
	var v OutVC
	v.Allocate(msg(1, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Allocate(msg(2, 4))
}

func TestOutVCReleaseIfOwner(t *testing.T) {
	var v OutVC
	m1, m2 := msg(1, 4), msg(2, 4)
	v.Allocate(m1)
	if v.ReleaseIfOwner(m2) {
		t.Fatal("released for non-owner")
	}
	if !v.ReleaseIfOwner(m1) {
		t.Fatal("did not release for owner")
	}
	if v.ReleaseIfOwner(m1) {
		t.Fatal("released twice")
	}
}

func TestOutPortCounts(t *testing.T) {
	p := NewOutPort(3)
	if p.FreeVCs() != 3 || !p.CompletelyFree() || !p.HasFreeVC() {
		t.Fatal("fresh port state wrong")
	}
	p.VCs[0].Allocate(msg(1, 4))
	if p.FreeVCs() != 2 || p.CompletelyFree() || !p.HasFreeVC() {
		t.Fatal("one-busy state wrong")
	}
	p.VCs[1].Allocate(msg(2, 4))
	p.VCs[2].Allocate(msg(3, 4))
	if p.FreeVCs() != 0 || p.HasFreeVC() || p.CompletelyFree() {
		t.Fatal("all-busy state wrong")
	}
}

func TestOutPortRR(t *testing.T) {
	p := NewOutPort(3)
	seen := []int{p.NextRR(), p.NextRR(), p.NextRR(), p.NextRR()}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("rr sequence %v want %v", seen, want)
		}
	}
}

func TestRoundRobinFairness(t *testing.T) {
	a := NewRoundRobin(4)
	counts := make([]int, 4)
	// All requesters always want; each must win exactly 1/4 of the grants.
	for i := 0; i < 400; i++ {
		g := a.Grant(func(int) bool { return true })
		counts[g]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("requester %d won %d/400", i, c)
		}
	}
}

func TestRoundRobinSkipsNonRequesters(t *testing.T) {
	a := NewRoundRobin(3)
	g := a.Grant(func(i int) bool { return i == 2 })
	if g != 2 {
		t.Fatalf("granted %d want 2", g)
	}
	if g := a.Grant(func(int) bool { return false }); g != -1 {
		t.Fatalf("granted %d for no requests", g)
	}
	if a.N() != 3 {
		t.Error("N")
	}
}

func TestRoundRobinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRoundRobin(0)
}

// Property: under persistent requests from a subset, grants rotate within
// the subset (no starvation).
func TestRoundRobinNoStarvation(t *testing.T) {
	f := func(mask uint8) bool {
		want := func(i int) bool { return mask&(1<<i) != 0 }
		a := NewRoundRobin(8)
		active := 0
		for i := 0; i < 8; i++ {
			if want(i) {
				active++
			}
		}
		if active == 0 {
			return a.Grant(want) == -1
		}
		counts := make([]int, 8)
		for i := 0; i < 8*active; i++ {
			g := a.Grant(want)
			if g < 0 || !want(g) {
				return false
			}
			counts[g]++
		}
		for i := 0; i < 8; i++ {
			if want(i) && counts[i] != 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
