package router

import (
	"testing"
	"testing/quick"
)

func TestGrantFromBasic(t *testing.T) {
	a := NewRoundRobin(8)
	always := func(int32) bool { return true }

	// Pointer starts at 0: nearest candidate at-or-after 0 wins.
	if g := a.GrantFrom([]int32{5, 2, 7}, always); g != 2 {
		t.Fatalf("granted %d want 2", g)
	}
	// Pointer advanced to 3: now 5 is nearest.
	if g := a.GrantFrom([]int32{5, 2, 7}, always); g != 5 {
		t.Fatalf("granted %d want 5", g)
	}
	// Pointer at 6: 7 is nearest, 2 wraps further.
	if g := a.GrantFrom([]int32{5, 2, 7}, always); g != 7 {
		t.Fatalf("granted %d want 7", g)
	}
	// Pointer at 0 again (wrapped).
	if g := a.GrantFrom([]int32{5, 2, 7}, always); g != 2 {
		t.Fatalf("granted %d want 2", g)
	}
}

func TestGrantFromFiltersAndEmpty(t *testing.T) {
	a := NewRoundRobin(4)
	if g := a.GrantFrom(nil, func(int32) bool { return true }); g != -1 {
		t.Fatalf("empty candidates granted %d", g)
	}
	only3 := func(c int32) bool { return c == 3 }
	if g := a.GrantFrom([]int32{0, 1, 3}, only3); g != 3 {
		t.Fatalf("granted %d want 3", g)
	}
	none := func(int32) bool { return false }
	if g := a.GrantFrom([]int32{0, 1, 2}, none); g != -1 {
		t.Fatalf("granted %d want -1", g)
	}
}

func TestGrantFromPointerOnlyAdvancesOnGrant(t *testing.T) {
	a := NewRoundRobin(4)
	none := func(int32) bool { return false }
	always := func(int32) bool { return true }
	a.GrantFrom([]int32{1, 2}, none) // no grant: pointer stays at 0
	if g := a.GrantFrom([]int32{1, 3}, always); g != 1 {
		t.Fatalf("granted %d want 1 (pointer must not move on failed grants)", g)
	}
}

// Property: under persistent identical candidate sets, GrantFrom serves all
// candidates equally (rotational fairness), matching Grant's behaviour.
func TestGrantFromFairness(t *testing.T) {
	f := func(mask uint8) bool {
		var cands []int32
		for i := int32(0); i < 8; i++ {
			if mask&(1<<i) != 0 {
				cands = append(cands, i)
			}
		}
		a := NewRoundRobin(8)
		always := func(int32) bool { return true }
		if len(cands) == 0 {
			return a.GrantFrom(cands, always) == -1
		}
		counts := map[int32]int{}
		for i := 0; i < len(cands)*6; i++ {
			g := a.GrantFrom(cands, always)
			if g < 0 {
				return false
			}
			counts[g]++
		}
		for _, c := range cands {
			if counts[c] != 6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GrantFrom always returns a candidate that passes the filter and
// is nearest in rotating order.
func TestGrantFromNearest(t *testing.T) {
	f := func(mask uint8, seed uint8) bool {
		var cands []int32
		for i := int32(0); i < 8; i++ {
			if mask&(1<<i) != 0 {
				cands = append(cands, i)
			}
		}
		a := NewRoundRobin(8)
		// Advance the pointer to a pseudo-random position.
		for i := 0; i < int(seed%8); i++ {
			a.Grant(func(int) bool { return true })
		}
		ptr := a.next
		always := func(int32) bool { return true }
		g := a.GrantFrom(cands, always)
		if len(cands) == 0 {
			return g == -1
		}
		best := cands[0]
		bestDist := (int(best) - ptr + 8) % 8
		for _, c := range cands[1:] {
			if d := (int(c) - ptr + 8) % 8; d < bestDist {
				best, bestDist = c, d
			}
		}
		return g == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
