package router

import (
	"wormnet/internal/message"
)

// OutVC is the sender-side state of one output virtual channel: which
// message, if any, currently owns it. Ownership is taken when a head flit is
// allocated to the channel and released when the tail flit is transmitted
// through it.
type OutVC struct {
	owner *message.Message
}

// Free reports whether no message owns the channel.
func (v *OutVC) Free() bool { return v.owner == nil }

// Owner returns the owning message, or nil.
func (v *OutVC) Owner() *message.Message { return v.owner }

// Allocate assigns the channel to m. It panics if the channel is busy.
func (v *OutVC) Allocate(m *message.Message) {
	if v.owner != nil {
		panic("router: allocating busy output VC")
	}
	v.owner = m
}

// Release frees the channel. Releasing a free channel is a no-op so that
// deadlock recovery can release unconditionally.
func (v *OutVC) Release() { v.owner = nil }

// ReleaseIfOwner frees the channel only if m owns it, and reports whether it
// did. Deadlock recovery uses this to avoid releasing a channel that has
// already been re-allocated to another message.
func (v *OutVC) ReleaseIfOwner(m *message.Message) bool {
	if v.owner == m {
		v.owner = nil
		return true
	}
	return false
}

// OutPort is the sender-side state of one physical output channel: its
// virtual channels plus the round-robin pointer used to multiplex them on
// the physical link.
type OutPort struct {
	VCs []OutVC
	// rr is the index of the virtual channel to consider first at the next
	// switch-allocation round (demand-driven VC multiplexing).
	rr int
}

// NewOutPort returns an output port with v virtual channels.
func NewOutPort(v int) *OutPort {
	return &OutPort{VCs: make([]OutVC, v)}
}

// OutPortOver returns an output port whose virtual-channel state lives in
// the caller-provided backing slice. The simulation engine uses this to
// keep all of a node's output virtual channels in one contiguous
// allocation.
func OutPortOver(backing []OutVC) OutPort {
	return OutPort{VCs: backing}
}

// FreeVCs returns the number of unallocated virtual channels.
func (p *OutPort) FreeVCs() int {
	n := 0
	for i := range p.VCs {
		if p.VCs[i].Free() {
			n++
		}
	}
	return n
}

// CompletelyFree reports whether every virtual channel is unallocated — the
// paper's "completely free physical channel" (ALO rule b).
func (p *OutPort) CompletelyFree() bool {
	return p.FreeVCs() == len(p.VCs)
}

// HasFreeVC reports whether at least one virtual channel is unallocated —
// the per-channel test of ALO rule (a).
func (p *OutPort) HasFreeVC() bool {
	for i := range p.VCs {
		if p.VCs[i].Free() {
			return true
		}
	}
	return false
}

// NextRR returns the round-robin start index and advances the pointer.
func (p *OutPort) NextRR() int {
	r := p.rr
	p.rr = (p.rr + 1) % len(p.VCs)
	return r
}
