// Package campaign is the distributed sweep farm: a coordinator that
// expands experiment specs into sweep points, journals campaign state
// through the (PR 5) manifest, and dispatches points to worker processes
// over a lease-based pull protocol — acquire, renew, checkpoint, complete,
// fail — with work-stealing of expired leases and checkpoint *migration*: a
// worker that dies mid-point leaves its last flushed WNCP checkpoint with
// the coordinator, and the next worker resumes the point from it
// bit-identically, at any engine worker count.
//
// Exactly-once result commit: the coordinator is the single commit point.
// A point's result lands in the manifest only through Complete holding the
// point's *current* lease; a stale worker (its lease expired and the point
// was stolen) gets ErrLeaseLost and discards its result. The manifest is
// written atomically after every transition, so a coordinator crash never
// loses a committed result and never records one twice — on restart,
// running points without a surviving lease are simply re-leased (their
// checkpoints restore them mid-flight), and completed points are final.
//
// Determinism makes this safe at any interleaving: every attempt of a point
// computes the same result, so even the worst case — two workers racing the
// same point — cannot produce conflicting commits, only a rejected
// duplicate of an identical value.
package campaign

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"wormnet/internal/checkpoint"
	"wormnet/internal/metrics"
	"wormnet/internal/obs"
	"wormnet/internal/stats"
)

// Typed coordinator errors; the HTTP layer maps them to status codes.
var (
	// ErrLeaseLost marks an operation under a lease that expired and was
	// stolen, or never existed. The worker abandons the point.
	ErrLeaseLost = errors.New("campaign: lease lost or superseded")
	// ErrUnknownCampaign marks an id the coordinator has never seen.
	ErrUnknownCampaign = errors.New("campaign: unknown campaign")
	// ErrVersionSkew marks a worker whose build version differs from the
	// coordinator's — a mixed-version fleet cannot promise bit-identical
	// results, so it is rejected instead of silently tolerated.
	ErrVersionSkew = errors.New("campaign: worker build version mismatch")
	// ErrProtocolSkew marks a worker speaking a different protocol version.
	ErrProtocolSkew = errors.New("campaign: protocol version mismatch")
	// ErrDigestMismatch marks a commit whose config digest differs from
	// the coordinator's expansion of the same point.
	ErrDigestMismatch = errors.New("campaign: config digest mismatch")
	// ErrBadCheckpoint marks an uploaded checkpoint that does not decode.
	ErrBadCheckpoint = errors.New("campaign: uploaded checkpoint does not decode")
)

// DefaultLeaseTTL is the lease time-to-live when Options does not set one.
const DefaultLeaseTTL = 15 * time.Second

// Options configures a Coordinator.
type Options struct {
	// Dir is the campaign journal root: each campaign journals its
	// manifest, spec and migrated checkpoints under Dir/<id>/. Empty keeps
	// everything in memory (tests, throwaway farms).
	Dir string
	// LeaseTTL is how long a granted lease lives without renewal before
	// its point becomes stealable. 0 selects DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Version is the coordinator's build version; "" selects
	// obs.BuildVersion(). Workers reporting a different version are
	// rejected unless AllowVersionSkew.
	Version string
	// AllowVersionSkew admits workers of any build version (development
	// convenience; never use it when results must be bit-identical).
	AllowVersionSkew bool
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// lease is one granted point lease.
type lease struct {
	id      string
	point   int
	worker  string
	attempt int
	expires time.Time
	cycle   int64
	live    []metrics.Sample
}

// campaignState is one campaign's in-memory state.
type campaignState struct {
	id       string
	spec     *Spec
	points   []Point
	manifest *Manifest
	dir      string // "" when not journaled

	leases  map[int]*lease // active lease per point index
	byLease map[string]*lease

	ckpts      map[int][]byte // migrated checkpoint bytes per point
	ckptCycles map[int]int64

	merged     *stats.Collector  // merged completed-point collectors
	engMetrics *metrics.Registry // merged completed-point engine metrics
	seq        int

	// firstGrant anchors the ETA extrapolation: wall time of the first
	// lease grant this coordinator lifetime. Zero before any grant (and
	// after a restart, where the rate estimate simply restarts too).
	firstGrant time.Time
}

// pointFraction is the completion fraction of one point at a given engine
// cycle, clamped to [0,1].
func (st *campaignState) pointFraction(point int, cycle int64) float64 {
	total := st.points[point].Config.TotalCycles()
	if total <= 0 || cycle <= 0 {
		return 0
	}
	if cycle >= total {
		return 1
	}
	return float64(cycle) / float64(total)
}

// progressLocked computes a campaign's fractional completion (terminal
// points count 1, live leases their last-renewed cycle fraction), elapsed
// wall time since the first grant, and the rate-extrapolated ETA. Caller
// holds c.mu.
func (c *Coordinator) progressLocked(st *campaignState) (frac float64, elapsedMS, etaMS int64) {
	total := len(st.manifest.Points)
	if total == 0 {
		return 0, 0, -1
	}
	var done float64
	for i := range st.manifest.Points {
		if st.manifest.Points[i].Status.Terminal() {
			done++
		} else if l := st.leases[i]; l != nil {
			done += st.pointFraction(i, l.cycle)
		}
	}
	frac = done / float64(total)
	if st.firstGrant.IsZero() {
		return frac, 0, -1
	}
	elapsed := c.now().Sub(st.firstGrant)
	elapsedMS = elapsed.Milliseconds()
	switch {
	case st.manifest.Done():
		etaMS = 0
	case frac <= 0 || elapsedMS <= 0:
		etaMS = -1
	default:
		etaMS = int64(float64(elapsedMS) * (1 - frac) / frac)
	}
	return frac, elapsedMS, etaMS
}

// farm is the coordinator's own metrics (served on /metrics).
type farm struct {
	campaigns    *metrics.Counter
	completed    *metrics.Counter
	failed       *metrics.Counter
	granted      *metrics.Counter
	renewed      *metrics.Counter
	expired      *metrics.Counter
	stale        *metrics.Counter
	ckptStored   *metrics.Counter
	ckptBytes    *metrics.Counter
	resumeGrants *metrics.Counter
	verRejects   *metrics.Counter
	digRejects   *metrics.Counter
	leasesActive *metrics.Gauge
	pending      *metrics.Gauge
}

func newFarm(reg *metrics.Registry) farm {
	return farm{
		campaigns:    reg.NewCounter("farm_campaigns_total", "campaigns submitted"),
		completed:    reg.NewCounter("farm_points_completed_total", "points committed exactly once"),
		failed:       reg.NewCounter("farm_points_failed_total", "points terminally failed or stalled"),
		granted:      reg.NewCounter("farm_leases_granted_total", "leases granted (first attempts, retries and steals)"),
		renewed:      reg.NewCounter("farm_leases_renewed_total", "lease heartbeats accepted"),
		expired:      reg.NewCounter("farm_leases_expired_total", "leases revoked after TTL expiry (stolen points)"),
		stale:        reg.NewCounter("farm_stale_results_total", "commits and reports rejected for a lost lease"),
		ckptStored:   reg.NewCounter("farm_checkpoints_stored_total", "migrated checkpoints accepted"),
		ckptBytes:    reg.NewCounter("farm_checkpoint_bytes_total", "migrated checkpoint bytes accepted"),
		resumeGrants: reg.NewCounter("farm_checkpoint_resume_grants_total", "leases granted with a migrated checkpoint attached"),
		verRejects:   reg.NewCounter("farm_version_rejects_total", "workers rejected for build-version skew"),
		digRejects:   reg.NewCounter("farm_digest_rejects_total", "commits rejected for config-digest mismatch"),
		leasesActive: reg.NewGauge("farm_leases_active", "currently active leases"),
		pending:      reg.NewGauge("farm_points_pending", "points awaiting a worker"),
	}
}

// Coordinator owns the campaigns and the lease state machine. All methods
// are safe for concurrent use.
type Coordinator struct {
	opts    Options
	version string
	ttl     time.Duration
	now     func() time.Time

	reg *metrics.Registry
	m   farm

	mu        sync.Mutex
	campaigns map[string]*campaignState
	order     []string // submission order, for deterministic dispatch scans
	draining  bool
}

// NewCoordinator builds a coordinator, loading any campaigns already
// journaled under Options.Dir (a restarted coordinator resumes its farm:
// completed points stay final, running points without a surviving lease are
// re-leased, migrated checkpoints are reloaded from disk).
func NewCoordinator(opts Options) (*Coordinator, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.Version == "" {
		opts.Version = obs.BuildVersion()
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	reg := metrics.NewRegistry()
	c := &Coordinator{
		opts:      opts,
		version:   opts.Version,
		ttl:       opts.LeaseTTL,
		now:       opts.Clock,
		reg:       reg,
		m:         newFarm(reg),
		campaigns: make(map[string]*campaignState),
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		if err := c.loadCampaigns(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Registry returns the coordinator's farm metrics registry.
func (c *Coordinator) Registry() *metrics.Registry { return c.reg }

// Version returns the build version workers must match.
func (c *Coordinator) Version() string { return c.version }

// LeaseTTL returns the configured lease time-to-live.
func (c *Coordinator) LeaseTTL() time.Duration { return c.ttl }

// BeginDrain stops granting new leases; in-flight leases may still renew,
// checkpoint, complete and fail, so workers finish what they hold.
func (c *Coordinator) BeginDrain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// loadCampaigns restores journaled campaigns from the coordinator dir.
func (c *Coordinator) loadCampaigns() error {
	entries, err := os.ReadDir(c.opts.Dir)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(c.opts.Dir, ent.Name())
		specFile, err := os.Open(filepath.Join(dir, "spec.json"))
		if err != nil {
			continue // not a campaign directory
		}
		spec, err := DecodeSpec(specFile)
		specFile.Close()
		if err != nil {
			return fmt.Errorf("campaign: load %s: %w", dir, err)
		}
		man, err := LoadManifest(dir)
		if err != nil {
			return fmt.Errorf("campaign: load %s: %w", dir, err)
		}
		st, err := c.newState(ent.Name(), spec, man, dir)
		if err != nil {
			return err
		}
		// Reload migrated checkpoints named in the journal.
		for i := range man.Points {
			rec := &man.Points[i]
			if rec.Checkpoint == "" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, rec.Checkpoint))
			if err != nil {
				rec.Checkpoint = "" // lost with the crash; point restarts clean
				continue
			}
			if snap, err := checkpoint.Decode(bytes.NewReader(data)); err == nil {
				st.ckpts[i] = data
				st.ckptCycles[i] = snap.Now
			} else {
				rec.Checkpoint = ""
			}
		}
		c.campaigns[st.id] = st
		c.order = append(c.order, st.id)
		c.m.campaigns.Inc()
	}
	sort.Strings(c.order) // ReadDir order is lexical already; make it explicit
	return nil
}

// newState expands a spec into a campaign state.
func (c *Coordinator) newState(id string, spec *Spec, man *Manifest, dir string) (*campaignState, error) {
	points, err := spec.Points()
	if err != nil {
		return nil, err
	}
	if len(man.Points) != len(points) {
		return nil, fmt.Errorf("campaign: %s: manifest has %d points, spec expands to %d",
			id, len(man.Points), len(points))
	}
	return &campaignState{
		id:         id,
		spec:       spec,
		points:     points,
		manifest:   man,
		dir:        dir,
		leases:     make(map[int]*lease),
		byLease:    make(map[string]*lease),
		ckpts:      make(map[int][]byte),
		ckptCycles: make(map[int]int64),
		engMetrics: metrics.NewRegistry(),
	}, nil
}

// journal persists the campaign's manifest when it has a directory.
func (st *campaignState) journal() error {
	if st.dir == "" {
		return nil
	}
	return st.manifest.Save(st.dir)
}

// Submit registers a campaign. Submission is idempotent: the id is derived
// from the spec's canonical JSON, so re-submitting the same experiment
// returns the existing campaign (created=false) instead of forking a
// duplicate.
func (c *Coordinator) Submit(spec *Spec) (id string, created bool, err error) {
	points, err := spec.Points()
	if err != nil {
		return "", false, err
	}
	base, err := spec.BaseConfig()
	if err != nil {
		return "", false, err
	}
	id = spec.ID()

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.campaigns[id]; ok {
		return id, false, nil
	}
	values := make([]string, len(points))
	for i, pt := range points {
		values[i] = pt.Raw
	}
	man := NewManifest("campaign", spec.Vary, spec.Seed, spec.Limiter, base.Manifest(), values)
	dir := ""
	if c.opts.Dir != "" {
		dir = filepath.Join(c.opts.Dir, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", false, fmt.Errorf("campaign: %w", err)
		}
		if err := writeFileAtomic(filepath.Join(dir, "spec.json"), mustMarshalSpec(spec)); err != nil {
			return "", false, err
		}
	}
	st, err := c.newState(id, spec, man, dir)
	if err != nil {
		return "", false, err
	}
	if err := st.journal(); err != nil {
		return "", false, err
	}
	c.campaigns[id] = st
	c.order = append(c.order, id)
	c.m.campaigns.Inc()
	return id, true, nil
}

// checkWorker gates a worker on build and protocol version.
func (c *Coordinator) checkWorker(req AcquireRequest) error {
	if req.Protocol != ProtocolVersion {
		return fmt.Errorf("%w: worker speaks %d, coordinator %d",
			ErrProtocolSkew, req.Protocol, ProtocolVersion)
	}
	if !c.opts.AllowVersionSkew && req.Version != c.version {
		c.m.verRejects.Inc()
		return fmt.Errorf("%w: worker %q built %q, coordinator built %q",
			ErrVersionSkew, req.Worker, req.Version, c.version)
	}
	return nil
}

// expireLeases revokes every lease past its deadline; their points keep
// status running (with their migrated checkpoints) and become assignable —
// the next acquire steals them. Caller holds c.mu.
func (c *Coordinator) expireLeases(now time.Time) {
	for _, st := range c.campaigns {
		for point, l := range st.leases {
			if now.After(l.expires) {
				delete(st.leases, point)
				delete(st.byLease, l.id)
				c.m.expired.Inc()
			}
		}
	}
}

// Acquire grants the lowest assignable point: pending points first, then
// running points whose lease expired (work stealing). When a migrated
// checkpoint exists for the point, the assignment says so and the worker
// resumes from it.
func (c *Coordinator) Acquire(req AcquireRequest) (*AcquireResponse, error) {
	if err := c.checkWorker(req); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	if req.Campaign != "" {
		if _, ok := c.campaigns[req.Campaign]; !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, req.Campaign)
		}
	}
	c.expireLeases(c.now())
	if !c.draining {
		ids := c.order
		if req.Campaign != "" {
			ids = []string{req.Campaign}
		}
		for _, id := range ids {
			st := c.campaigns[id]
			for i := range st.manifest.Points {
				rec := &st.manifest.Points[i]
				if rec.Status.Terminal() || st.leases[i] != nil {
					continue
				}
				return c.grantLocked(st, i, req.Worker)
			}
		}
	}
	if c.doneLocked(req.Campaign) {
		return &AcquireResponse{Status: AcquireDone}, nil
	}
	return &AcquireResponse{Status: AcquireWait}, nil
}

// grantLocked leases point i of st to worker. Caller holds c.mu.
func (c *Coordinator) grantLocked(st *campaignState, i int, worker string) (*AcquireResponse, error) {
	rec := &st.manifest.Points[i]
	st.seq++
	l := &lease{
		id:      fmt.Sprintf("%s-%03d-%d", st.id, i, st.seq),
		point:   i,
		worker:  worker,
		expires: c.now().Add(c.ttl),
		cycle:   st.ckptCycles[i],
	}
	rec.Status = StatusRunning
	rec.Attempts++
	rec.Worker = worker
	l.attempt = rec.Attempts
	if err := st.journal(); err != nil {
		rec.Attempts--
		return nil, err
	}
	st.leases[i] = l
	st.byLease[l.id] = l
	if st.firstGrant.IsZero() {
		st.firstGrant = c.now()
	}
	c.m.granted.Inc()
	hasCkpt := st.ckpts[i] != nil
	if hasCkpt {
		c.m.resumeGrants.Inc()
	}
	return &AcquireResponse{
		Status: AcquireWork,
		Assignment: &Assignment{
			Campaign:      st.id,
			Lease:         l.id,
			Point:         i,
			Value:         rec.Value,
			Attempt:       l.attempt,
			TTLMS:         c.ttl.Milliseconds(),
			Digest:        st.points[i].Digest,
			HasCheckpoint: hasCkpt,
			Spec:          st.spec,
		},
	}, nil
}

// doneLocked reports whether every campaign (or the named one) is terminal.
// Caller holds c.mu.
func (c *Coordinator) doneLocked(campaignID string) bool {
	if campaignID != "" {
		return c.campaigns[campaignID].manifest.Done()
	}
	if len(c.campaigns) == 0 {
		return false
	}
	for _, st := range c.campaigns {
		if !st.manifest.Done() {
			return false
		}
	}
	return true
}

// leaseFor resolves a live lease or fails with ErrLeaseLost. A lease stays
// valid past its deadline until the point is actually stolen — a slow but
// alive worker keeps its claim. Caller holds c.mu.
func (c *Coordinator) leaseFor(campaignID, leaseID string) (*campaignState, *lease, error) {
	st, ok := c.campaigns[campaignID]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, campaignID)
	}
	l, ok := st.byLease[leaseID]
	if !ok {
		c.m.stale.Inc()
		return nil, nil, fmt.Errorf("%w: %s", ErrLeaseLost, leaseID)
	}
	return st, l, nil
}

// Renew extends a lease and records the worker's live progress snapshot.
func (c *Coordinator) Renew(campaignID, leaseID string, req RenewRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, l, err := c.leaseFor(campaignID, leaseID)
	if err != nil {
		return err
	}
	l.expires = c.now().Add(c.ttl)
	if req.Cycle > l.cycle {
		l.cycle = req.Cycle
	}
	if req.Metrics != nil {
		l.live = req.Metrics
	}
	c.m.renewed.Inc()
	return nil
}

// StoreCheckpoint accepts a worker's WNCP checkpoint for its leased point
// and keeps it for migration. The bytes are validated through the real
// decoder before acceptance — a corrupt upload is rejected, preserving the
// previous good checkpoint. Storing also renews the lease (an upload is the
// strongest possible heartbeat).
func (c *Coordinator) StoreCheckpoint(campaignID, leaseID string, data []byte) error {
	snap, err := checkpoint.Decode(bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, l, err := c.leaseFor(campaignID, leaseID)
	if err != nil {
		return err
	}
	rec := &st.manifest.Points[l.point]
	if st.dir != "" {
		name := fmt.Sprintf("point-%03d.wncp", l.point)
		if err := writeFileAtomic(filepath.Join(st.dir, name), data); err != nil {
			return err
		}
		if rec.Checkpoint != name {
			rec.Checkpoint = name
			if err := st.journal(); err != nil {
				return err
			}
		}
	}
	st.ckpts[l.point] = data
	st.ckptCycles[l.point] = snap.Now
	l.expires = c.now().Add(c.ttl)
	if snap.Now > l.cycle {
		l.cycle = snap.Now
	}
	c.m.ckptStored.Inc()
	c.m.ckptBytes.Add(int64(len(data)))
	return nil
}

// GetCheckpoint returns the migrated checkpoint bytes for a point, if any.
func (c *Coordinator) GetCheckpoint(campaignID string, point int) ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.campaigns[campaignID]
	if !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrUnknownCampaign, campaignID)
	}
	if point < 0 || point >= len(st.manifest.Points) {
		return nil, false, fmt.Errorf("campaign: point %d out of range", point)
	}
	data, ok := st.ckpts[point]
	return data, ok, nil
}

// Complete commits a finished point, exactly once: the caller must hold the
// point's current lease and echo the coordinator's config digest. The
// result, collector state and engine metrics are merged into the campaign;
// the point's migrated checkpoint is discarded (the result supersedes it).
func (c *Coordinator) Complete(campaignID, leaseID string, req CompleteRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, l, err := c.leaseFor(campaignID, leaseID)
	if err != nil {
		return err
	}
	if req.Digest != st.points[l.point].Digest {
		c.m.digRejects.Inc()
		return fmt.Errorf("%w: point %d: worker computed %q, coordinator %q",
			ErrDigestMismatch, l.point, req.Digest, st.points[l.point].Digest)
	}
	rec := &st.manifest.Points[l.point]
	result := req.Result
	rec.Status = StatusCompleted
	rec.Outcome = "completed"
	rec.Error = ""
	rec.Result = &result
	rec.Worker = l.worker
	rec.ResumedFrom = req.ResumedFrom
	if rec.Checkpoint != "" && st.dir != "" {
		os.Remove(filepath.Join(st.dir, rec.Checkpoint)) //nolint:errcheck // the result supersedes it
	}
	rec.Checkpoint = ""
	if err := st.journal(); err != nil {
		rec.Status = StatusRunning
		rec.Result = nil
		return err
	}
	delete(st.leases, l.point)
	delete(st.byLease, l.id)
	delete(st.ckpts, l.point)
	delete(st.ckptCycles, l.point)
	c.m.completed.Inc()

	if req.Stats != nil {
		col := stats.NewCollector(req.Stats.Nodes, req.Stats.WinStart, req.Stats.WinEnd)
		if err := col.Restore(*req.Stats); err == nil {
			if st.merged == nil {
				st.merged = col
			} else if sameGeometry(st.merged, col) {
				st.merged.Merge(col)
			}
		}
	}
	if req.Metrics != nil {
		tmp := metrics.NewRegistry()
		if err := tmp.Restore(req.Metrics); err == nil {
			st.engMetrics.Merge(tmp)
		}
	}
	return nil
}

// sameGeometry reports whether two collectors can merge.
func sameGeometry(a, b *stats.Collector) bool {
	as, ae := a.Window()
	bs, be := b.Window()
	return as == bs && ae == be
}

// Fail reports a non-completed attempt. An interrupted worker (graceful
// drain) returns the point without consuming an attempt; a crash, stall or
// budget failure counts against the spec's retry budget — within it the
// point returns to pending (its checkpoint intact, so the retry resumes
// mid-flight), beyond it the point goes terminal.
func (c *Coordinator) Fail(campaignID, leaseID string, req FailRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, l, err := c.leaseFor(campaignID, leaseID)
	if err != nil {
		return err
	}
	rec := &st.manifest.Points[l.point]
	rec.Outcome = req.Outcome
	rec.Error = req.Error
	switch {
	case req.Outcome == "interrupted":
		rec.Status = StatusPending
		rec.Attempts-- // voluntary preemption is not a failed attempt
	case rec.Attempts >= maxAttempts(st.spec.Retries):
		if req.Outcome == "stalled" {
			rec.Status = StatusStalled
		} else {
			rec.Status = StatusFailed
		}
		c.m.failed.Inc()
	default:
		rec.Status = StatusPending
	}
	if err := st.journal(); err != nil {
		return err
	}
	delete(st.leases, l.point)
	delete(st.byLease, l.id)
	return nil
}

// maxAttempts mirrors cmd/sweep's retry loop: fault.RetryPolicy with
// MaxRetries=r executes max(1, r) attempts in total.
func maxAttempts(retries int) int {
	if retries < 1 {
		return 1
	}
	return retries
}

// List summarises every campaign in submission order.
func (c *Coordinator) List() []CampaignSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CampaignSummary, 0, len(c.order))
	for _, id := range c.order {
		st := c.campaigns[id]
		out = append(out, CampaignSummary{
			ID:        id,
			Vary:      st.spec.Vary,
			Points:    len(st.manifest.Points),
			Completed: st.manifest.StatusCounts()[StatusCompleted],
			Done:      st.manifest.Done(),
		})
	}
	return out
}

// Status builds the live progress view of one campaign: the journal, the
// active leases, the merged collector result and the merged engine-metrics
// view (completed points plus the latest heartbeat snapshot of every live
// lease).
func (c *Coordinator) Status(campaignID string) (*StatusView, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.campaigns[campaignID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, campaignID)
	}
	c.expireLeases(c.now())
	view := &StatusView{
		ID:     st.id,
		Done:   st.manifest.Done(),
		Counts: st.manifest.StatusCounts(),
		Points: append([]PointRecord(nil), st.manifest.Points...),
	}
	now := c.now()
	for _, l := range st.leases {
		view.Leases = append(view.Leases, LeaseView{
			Point:     l.point,
			Worker:    l.worker,
			Lease:     l.id,
			Cycle:     l.cycle,
			Attempt:   l.attempt,
			ExpiresMS: l.expires.Sub(now).Milliseconds(),
			Progress:  st.pointFraction(l.point, l.cycle),
		})
	}
	sort.Slice(view.Leases, func(i, j int) bool { return view.Leases[i].Point < view.Leases[j].Point })
	view.Progress, view.ElapsedMS, view.EtaMS = c.progressLocked(st)
	if st.merged != nil {
		r := st.merged.Result()
		view.MergedResult = &r
	}
	live := metrics.NewRegistry()
	live.Merge(st.engMetrics)
	for _, l := range st.leases {
		if l.live == nil {
			continue
		}
		tmp := metrics.NewRegistry()
		if err := tmp.Restore(l.live); err == nil {
			live.Merge(tmp)
		}
	}
	if names := live.Names(); len(names) > 0 {
		view.Metrics = obs.MetricsMap(live)
	}
	return view, nil
}

// Farm builds the fleet-wide telemetry snapshot: one progress row per
// campaign, one row per active worker lease, and merged message totals.
// It is cheap enough to stream every second — it touches only lease state
// and counter samples, never the full merged registries.
func (c *Coordinator) Farm() *FarmView {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases(c.now())
	view := &FarmView{
		Draining:  c.draining,
		Campaigns: make([]CampaignProgress, 0, len(c.order)),
	}
	now := c.now()
	for _, id := range c.order {
		st := c.campaigns[id]
		counts := st.manifest.StatusCounts()
		row := CampaignProgress{
			ID:        id,
			Vary:      st.spec.Vary,
			Points:    len(st.manifest.Points),
			Completed: counts[StatusCompleted],
			Failed:    counts[StatusFailed],
			Running:   len(st.leases),
			Done:      st.manifest.Done(),
		}
		row.Progress, row.ElapsedMS, row.EtaMS = c.progressLocked(st)
		view.Campaigns = append(view.Campaigns, row)

		for _, l := range st.leases {
			view.Workers = append(view.Workers, WorkerView{
				Worker:    l.worker,
				Campaign:  id,
				Point:     l.point,
				Value:     st.points[l.point].Raw,
				Cycle:     l.cycle,
				Progress:  st.pointFraction(l.point, l.cycle),
				Attempt:   l.attempt,
				ExpiresMS: l.expires.Sub(now).Milliseconds(),
			})
		}
		view.Delivered += counterTotal(st, "sim_messages_delivered_total")
		view.Admitted += counterTotal(st, "sim_injection_admitted_total")
		view.Denied += counterTotal(st, "sim_injection_denied_total")
	}
	sort.Slice(view.Workers, func(i, j int) bool {
		a, b := &view.Workers[i], &view.Workers[j]
		if a.Campaign != b.Campaign {
			return a.Campaign < b.Campaign
		}
		return a.Point < b.Point
	})
	return view
}

// counterTotal sums one counter across a campaign's merged completed-point
// metrics and the latest heartbeat snapshot of every live lease.
func counterTotal(st *campaignState, name string) int64 {
	var total int64
	for _, s := range st.engMetrics.Snapshot() {
		if s.Name == name && s.Kind == metrics.KindCounter {
			total += int64(s.Value)
		}
	}
	for _, l := range st.leases {
		for _, s := range l.live {
			if s.Name == name && s.Kind == metrics.KindCounter {
				total += int64(s.Value)
			}
		}
	}
	return total
}

// Manifest returns a copy of a campaign's journal (tests, CLI rendering).
func (c *Coordinator) Manifest(campaignID string) (*Manifest, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.campaigns[campaignID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCampaign, campaignID)
	}
	cp := *st.manifest
	cp.Points = append([]PointRecord(nil), st.manifest.Points...)
	return &cp, nil
}

// Done reports whether every known campaign is terminal (false with none).
func (c *Coordinator) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doneLocked("")
}

// UpdateGauges refreshes the farm gauges from current state; the metrics
// handler calls it before each exposition.
func (c *Coordinator) UpdateGauges() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLeases(c.now())
	active, pending := 0, 0
	for _, st := range c.campaigns {
		active += len(st.leases)
		for i := range st.manifest.Points {
			rec := &st.manifest.Points[i]
			if !rec.Status.Terminal() && st.leases[i] == nil {
				pending++
			}
		}
	}
	c.m.leasesActive.SetInt(int64(active))
	c.m.pending.SetInt(int64(pending))
}

// mustMarshalSpec renders a spec for the on-disk journal.
func mustMarshalSpec(spec *Spec) []byte {
	data, err := jsonMarshalIndent(spec)
	if err != nil {
		panic(fmt.Sprintf("campaign: marshal spec: %v", err))
	}
	return data
}
