package campaign

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wormnet/internal/checkpoint"
	"wormnet/internal/sim"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestCoordinator(t *testing.T, dir string) (*Coordinator, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	c, err := NewCoordinator(Options{
		Dir:      dir,
		LeaseTTL: time.Second,
		Version:  "test-build",
		Clock:    clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, clk
}

func acquireReq(worker string) AcquireRequest {
	return AcquireRequest{Worker: worker, Version: "test-build", Protocol: ProtocolVersion}
}

// snapshotBytes runs the point's engine to cycle `at` and encodes a real
// WNCP checkpoint for it.
func snapshotBytes(t *testing.T, spec *Spec, point int, at int64) []byte {
	t.Helper()
	points, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(points[point].Config)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for e.Now() < at {
		e.Step()
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := checkpoint.Encode(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSubmitIdempotent(t *testing.T) {
	dir := t.TempDir()
	c, _ := newTestCoordinator(t, dir)
	spec := testSpec()
	id, created, err := c.Submit(spec)
	if err != nil || !created {
		t.Fatalf("first submit: id=%s created=%v err=%v", id, created, err)
	}
	id2, created2, err := c.Submit(spec)
	if err != nil || created2 || id2 != id {
		t.Fatalf("resubmit: id=%s created=%v err=%v", id2, created2, err)
	}
	for _, name := range []string{"spec.json", ManifestName} {
		if _, err := os.Stat(filepath.Join(dir, id, name)); err != nil {
			t.Errorf("journal file %s missing: %v", name, err)
		}
	}
}

func TestAcquireVersionGate(t *testing.T) {
	c, _ := newTestCoordinator(t, "")
	if _, _, err := c.Submit(testSpec()); err != nil {
		t.Fatal(err)
	}
	req := acquireReq("w1")
	req.Version = "other-build"
	if _, err := c.Acquire(req); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("version skew admitted: %v", err)
	}
	req = acquireReq("w1")
	req.Protocol = ProtocolVersion + 1
	if _, err := c.Acquire(req); !errors.Is(err, ErrProtocolSkew) {
		t.Fatalf("protocol skew admitted: %v", err)
	}

	skewed, err := NewCoordinator(Options{Version: "test-build", AllowVersionSkew: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := skewed.Submit(testSpec()); err != nil {
		t.Fatal(err)
	}
	req = acquireReq("w1")
	req.Version = "other-build"
	if _, err := skewed.Acquire(req); err != nil {
		t.Fatalf("AllowVersionSkew still rejected: %v", err)
	}
}

func TestLeaseLifecycle(t *testing.T) {
	c, clk := newTestCoordinator(t, "")
	spec := testSpec()
	id, _, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	points, _ := spec.Points()

	resp, err := c.Acquire(acquireReq("w1"))
	if err != nil || resp.Status != AcquireWork {
		t.Fatalf("acquire: %+v err=%v", resp, err)
	}
	a := resp.Assignment
	if a.Point != 0 || a.Attempt != 1 || a.HasCheckpoint || a.Digest != points[0].Digest {
		t.Fatalf("bad assignment: %+v", a)
	}

	// Renewal keeps the lease alive past its original TTL.
	clk.advance(700 * time.Millisecond)
	if err := c.Renew(id, a.Lease, RenewRequest{Cycle: 50}); err != nil {
		t.Fatal(err)
	}
	clk.advance(700 * time.Millisecond)
	resp2, err := c.Acquire(acquireReq("w2"))
	if err != nil || resp2.Status != AcquireWork || resp2.Assignment.Point != 1 {
		t.Fatalf("second worker should get point 1: %+v err=%v", resp2, err)
	}

	// Both points leased: a third acquire waits.
	resp3, err := c.Acquire(acquireReq("w3"))
	if err != nil || resp3.Status != AcquireWait {
		t.Fatalf("want wait, got %+v err=%v", resp3, err)
	}

	// Commit point 0 exactly once.
	if err := c.Complete(id, a.Lease, CompleteRequest{Digest: a.Digest}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(id, a.Lease, CompleteRequest{Digest: a.Digest}); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("double commit admitted: %v", err)
	}
	man, err := c.Manifest(id)
	if err != nil {
		t.Fatal(err)
	}
	if man.Points[0].Status != StatusCompleted || man.Points[0].Worker != "w1" {
		t.Fatalf("point 0 not committed: %+v", man.Points[0])
	}
}

func TestCompleteDigestGate(t *testing.T) {
	c, _ := newTestCoordinator(t, "")
	id, _, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Acquire(acquireReq("w1"))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Complete(id, resp.Assignment.Lease, CompleteRequest{Digest: "rate=999"})
	if !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("bad digest admitted: %v", err)
	}
	// The lease survives a rejected commit; the correct digest still lands.
	if err := c.Complete(id, resp.Assignment.Lease, CompleteRequest{Digest: resp.Assignment.Digest}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkStealingWithCheckpointMigration is the coordinator half of the
// migration story: worker A leases point 0, uploads a checkpoint, goes
// silent; after the TTL worker B steals the point, the assignment carries
// the checkpoint flag, and the downloaded bytes are bit-identical to the
// upload. A's late commit is rejected.
func TestWorkStealingWithCheckpointMigration(t *testing.T) {
	c, clk := newTestCoordinator(t, t.TempDir())
	spec := testSpec()
	id, _, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	respA, err := c.Acquire(acquireReq("workerA"))
	if err != nil {
		t.Fatal(err)
	}
	a := respA.Assignment

	ckpt := snapshotBytes(t, spec, 0, 200)
	if err := c.StoreCheckpoint(id, a.Lease, ckpt); err != nil {
		t.Fatal(err)
	}
	// Corrupt uploads are rejected and do not clobber the good checkpoint.
	bad := append([]byte(nil), ckpt...)
	bad[len(bad)-1] ^= 0xFF
	if err := c.StoreCheckpoint(id, a.Lease, bad); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("corrupt checkpoint accepted: %v", err)
	}

	// Worker A goes silent; the lease expires; worker B steals the point.
	clk.advance(2 * time.Second)
	respB, err := c.Acquire(acquireReq("workerB"))
	if err != nil || respB.Status != AcquireWork {
		t.Fatalf("steal failed: %+v err=%v", respB, err)
	}
	b := respB.Assignment
	if b.Point != 0 || b.Attempt != 2 || !b.HasCheckpoint {
		t.Fatalf("stolen assignment wrong: %+v", b)
	}
	got, ok, err := c.GetCheckpoint(id, 0)
	if err != nil || !ok || !bytes.Equal(got, ckpt) {
		t.Fatalf("migrated checkpoint not bit-identical (ok=%v err=%v)", ok, err)
	}

	// A wakes up and tries to act on its dead lease.
	if err := c.Renew(id, a.Lease, RenewRequest{}); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead lease renewed: %v", err)
	}
	if err := c.Complete(id, a.Lease, CompleteRequest{Digest: a.Digest}); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("dead lease committed: %v", err)
	}
	// B commits, recording the resume cycle.
	if err := c.Complete(id, b.Lease, CompleteRequest{Digest: b.Digest, ResumedFrom: 200}); err != nil {
		t.Fatal(err)
	}
	man, _ := c.Manifest(id)
	if man.Points[0].Worker != "workerB" || man.Points[0].ResumedFrom != 200 {
		t.Fatalf("migration not recorded: %+v", man.Points[0])
	}
	if man.Points[0].Checkpoint != "" {
		t.Fatalf("checkpoint reference not cleared: %+v", man.Points[0])
	}
}

func TestFailRetryAccounting(t *testing.T) {
	c, _ := newTestCoordinator(t, "")
	spec := testSpec()
	spec.Retries = 2 // two attempts total
	id, _, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: returns to pending without consuming an attempt.
	resp, _ := c.Acquire(acquireReq("w1"))
	if err := c.Fail(id, resp.Assignment.Lease, FailRequest{Outcome: "interrupted"}); err != nil {
		t.Fatal(err)
	}
	man, _ := c.Manifest(id)
	if man.Points[0].Status != StatusPending || man.Points[0].Attempts != 0 {
		t.Fatalf("interrupt consumed an attempt: %+v", man.Points[0])
	}

	// Crash 1/2: back to pending.
	resp, _ = c.Acquire(acquireReq("w1"))
	if err := c.Fail(id, resp.Assignment.Lease, FailRequest{Outcome: "crashed", Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	man, _ = c.Manifest(id)
	if man.Points[0].Status != StatusPending || man.Points[0].Attempts != 1 {
		t.Fatalf("first crash mishandled: %+v", man.Points[0])
	}

	// Crash 2/2: terminal failed.
	resp, _ = c.Acquire(acquireReq("w2"))
	if resp.Assignment.Point != 0 || resp.Assignment.Attempt != 2 {
		t.Fatalf("retry grant wrong: %+v", resp.Assignment)
	}
	if err := c.Fail(id, resp.Assignment.Lease, FailRequest{Outcome: "crashed", Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	man, _ = c.Manifest(id)
	if man.Points[0].Status != StatusFailed {
		t.Fatalf("exhausted point not failed: %+v", man.Points[0])
	}

	// A stall on the second point exhausts the budget too, as stalled.
	for i := 0; i < 2; i++ {
		resp, err = c.Acquire(acquireReq("w3"))
		if err != nil || resp.Status != AcquireWork {
			t.Fatalf("acquire %d: %+v err=%v", i, resp, err)
		}
		if err := c.Fail(id, resp.Assignment.Lease, FailRequest{Outcome: "stalled"}); err != nil {
			t.Fatal(err)
		}
	}
	man, _ = c.Manifest(id)
	if man.Points[1].Status != StatusStalled {
		t.Fatalf("stalled point not terminal: %+v", man.Points[1])
	}
	if !c.Done() {
		t.Fatal("all points terminal but coordinator not done")
	}
	resp, err = c.Acquire(acquireReq("w4"))
	if err != nil || resp.Status != AcquireDone {
		t.Fatalf("want done, got %+v err=%v", resp, err)
	}
}

// TestCoordinatorRestart proves the journal is the durable truth: a new
// coordinator over the same directory restores completed points as final,
// reloads migrated checkpoints, and re-leases unfinished work.
func TestCoordinatorRestart(t *testing.T) {
	dir := t.TempDir()
	c1, _ := newTestCoordinator(t, dir)
	spec := testSpec()
	id, _, err := c1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Complete point 0; checkpoint point 1 mid-flight.
	r0, _ := c1.Acquire(acquireReq("w1"))
	if err := c1.Complete(id, r0.Assignment.Lease, CompleteRequest{Digest: r0.Assignment.Digest}); err != nil {
		t.Fatal(err)
	}
	r1, _ := c1.Acquire(acquireReq("w1"))
	ckpt := snapshotBytes(t, spec, 1, 150)
	if err := c1.StoreCheckpoint(id, r1.Assignment.Lease, ckpt); err != nil {
		t.Fatal(err)
	}

	// "Crash" the coordinator; a new one loads the same directory.
	c2, _ := newTestCoordinator(t, dir)
	man, err := c2.Manifest(id)
	if err != nil {
		t.Fatal(err)
	}
	if man.Points[0].Status != StatusCompleted {
		t.Fatalf("completed point lost: %+v", man.Points[0])
	}
	resp, err := c2.Acquire(acquireReq("w2"))
	if err != nil || resp.Status != AcquireWork {
		t.Fatalf("restart did not re-lease: %+v err=%v", resp, err)
	}
	if resp.Assignment.Point != 1 || !resp.Assignment.HasCheckpoint {
		t.Fatalf("restart lost the migrated checkpoint: %+v", resp.Assignment)
	}
	got, ok, err := c2.GetCheckpoint(id, 1)
	if err != nil || !ok || !bytes.Equal(got, ckpt) {
		t.Fatal("reloaded checkpoint not bit-identical")
	}
	// Submitting the same spec after restart resumes, not forks.
	id2, created, err := c2.Submit(spec)
	if err != nil || created || id2 != id {
		t.Fatalf("restart submit forked: id=%s created=%v err=%v", id2, created, err)
	}
}

func TestDrainStopsGrants(t *testing.T) {
	c, _ := newTestCoordinator(t, "")
	id, _, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := c.Acquire(acquireReq("w1"))
	c.BeginDrain()
	r2, err := c.Acquire(acquireReq("w2"))
	if err != nil || r2.Status != AcquireWait {
		t.Fatalf("draining coordinator granted work: %+v err=%v", r2, err)
	}
	// The in-flight lease still renews and completes.
	if err := c.Renew(id, resp.Assignment.Lease, RenewRequest{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(id, resp.Assignment.Lease, CompleteRequest{Digest: resp.Assignment.Digest}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusView(t *testing.T) {
	c, _ := newTestCoordinator(t, "")
	spec := testSpec()
	id, _, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := c.Acquire(acquireReq("w1"))
	if err := c.Renew(id, resp.Assignment.Lease, RenewRequest{Cycle: 123}); err != nil {
		t.Fatal(err)
	}
	view, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if view.Done || view.Counts[StatusRunning] != 1 || view.Counts[StatusPending] != 1 {
		t.Fatalf("bad view: %+v", view)
	}
	if len(view.Leases) != 1 || view.Leases[0].Worker != "w1" || view.Leases[0].Cycle != 123 {
		t.Fatalf("bad lease view: %+v", view.Leases)
	}
	if _, err := c.Status("nope"); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("unknown campaign: %v", err)
	}
	list := c.List()
	if len(list) != 1 || list[0].ID != id || list[0].Points != 2 {
		t.Fatalf("bad list: %+v", list)
	}
}
