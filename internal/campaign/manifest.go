package campaign

// The durable campaign journal, factored out of cmd/sweep (PR 5) so the
// single-process sweep and the distributed coordinator share one format. A
// campaign journals every point-status transition to manifest.json in its
// campaign directory, atomically (temp file + rename), so a crashed or
// killed campaign can be resumed: completed points are skipped, and a point
// that left a mid-run checkpoint restarts from it instead of from cycle
// zero. The JSON layout is exactly the PR 5 sweep manifest (see
// TestManifestGolden); fields added since are omitempty so old journals
// load unchanged.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"wormnet/internal/stats"
)

// Status is the lifecycle of one point in the journal.
type Status string

// Point statuses. StatusRunning in a *loaded* manifest means the process
// (or the worker holding the lease) died mid-point; resume treats it like
// pending, restoring its checkpoint if one was flushed.
const (
	StatusPending     Status = "pending"
	StatusRunning     Status = "running"
	StatusCompleted   Status = "completed"
	StatusFailed      Status = "failed"
	StatusStalled     Status = "stalled"
	StatusInterrupted Status = "interrupted"
)

// Terminal reports whether a point in this status will never run again.
func (s Status) Terminal() bool {
	return s == StatusCompleted || s == StatusFailed || s == StatusStalled
}

// PointRecord is one point's journal entry.
type PointRecord struct {
	Index    int    `json:"index"`
	Value    string `json:"value"`
	Status   Status `json:"status"`
	Attempts int    `json:"attempts,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
	Error    string `json:"error,omitempty"`
	// Checkpoint is the point's snapshot file (relative to the campaign
	// directory); present while a resumable mid-run state exists.
	Checkpoint string        `json:"checkpoint,omitempty"`
	Result     *stats.Result `json:"result,omitempty"`
	// Worker names the worker currently holding (or last to hold) the
	// point's lease; empty for single-process sweeps.
	Worker string `json:"worker,omitempty"`
	// ResumedFrom is the cycle a migrated checkpoint restored the point at
	// on its final (completing) attempt; 0 when the point ran from scratch.
	ResumedFrom int64 `json:"resumed_from,omitempty"`
}

// Manifest is the journal's root document.
type Manifest struct {
	Tool    string         `json:"tool"`
	Vary    string         `json:"vary"`
	Seed    uint64         `json:"seed"`
	Limiter string         `json:"limiter"`
	Config  map[string]any `json:"config"`
	Points  []PointRecord  `json:"points"`
}

// ManifestName is the journal file inside a campaign directory.
const ManifestName = "manifest.json"

// NewManifest seeds a journal with every point pending.
func NewManifest(tool, vary string, seed uint64, limiter string, config map[string]any, values []string) *Manifest {
	m := &Manifest{Tool: tool, Vary: vary, Seed: seed, Limiter: limiter, Config: config}
	for i, v := range values {
		m.Points = append(m.Points, PointRecord{Index: i, Value: v, Status: StatusPending})
	}
	return m
}

// Save writes the journal atomically: a torn write can never destroy the
// previous good journal.
func (m *Manifest) Save(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: marshal manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // best-effort; gone after rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: close manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// LoadManifest reads the journal from a campaign directory.
func LoadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("campaign: parse %s: %w", ManifestName, err)
	}
	return &m, nil
}

// Compatible verifies a loaded journal describes the same campaign as the
// current invocation: same swept parameter, same seed, same limiter, same
// point values in the same order. (Per-point engine configs are additionally
// guarded by the checkpoint layer's config digest at restore time.)
func (m *Manifest) Compatible(vary string, seed uint64, limiter string, values []string) error {
	switch {
	case m.Vary != vary:
		return fmt.Errorf("campaign: resuming -vary %s campaign with -vary %s", m.Vary, vary)
	case m.Seed != seed:
		return fmt.Errorf("campaign: resuming seed %d campaign with seed %d", m.Seed, seed)
	case m.Limiter != limiter:
		return fmt.Errorf("campaign: resuming -limiter %s campaign with -limiter %s", m.Limiter, limiter)
	case len(m.Points) != len(values):
		return fmt.Errorf("campaign: resuming %d-point campaign with %d values", len(m.Points), len(values))
	}
	for i, v := range values {
		if m.Points[i].Value != v {
			return fmt.Errorf("campaign: point %d is %q in the journal but %q now", i, m.Points[i].Value, v)
		}
	}
	return nil
}

// Done reports whether every point reached a terminal status.
func (m *Manifest) Done() bool {
	for i := range m.Points {
		if !m.Points[i].Status.Terminal() {
			return false
		}
	}
	return true
}

// AllCompleted reports whether every point completed with a result.
func (m *Manifest) AllCompleted() bool {
	for i := range m.Points {
		if m.Points[i].Status != StatusCompleted {
			return false
		}
	}
	return true
}

// StatusCounts tallies points by status (for progress views).
func (m *Manifest) StatusCounts() map[Status]int {
	counts := make(map[Status]int)
	for i := range m.Points {
		counts[m.Points[i].Status]++
	}
	return counts
}
