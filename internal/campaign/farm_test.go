package campaign

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"wormnet/internal/sim"
	"wormnet/internal/stats"
)

// farmSpec is a two-point sweep small enough to run in-process but long
// enough that the first periodic checkpoint lands well before the end.
func farmSpec() *Spec {
	s := testSpec()
	s.WarmupCycles, s.MeasureCycles, s.DrainCycles = 200, 800, 300
	s.CheckpointEvery = 150
	s.Retries = 3
	return s
}

// serialResults runs every point of the spec to completion in-process — the
// golden the farm must reproduce bit-identically.
func serialResults(t *testing.T, spec *Spec) []stats.Result {
	t.Helper()
	points, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]stats.Result, len(points))
	for i, pt := range points {
		e, err := sim.New(pt.Config)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = e.Run()
		e.Close()
	}
	return out
}

// TestFarmChaosMigration is the acceptance test for the whole subsystem:
// worker A leases point 0, uploads one checkpoint, and chaos-dies without a
// word to the coordinator; after the lease TTL worker B — running a
// different engine worker count — steals the point, resumes from the
// migrated checkpoint, and finishes the campaign. Every committed result
// must be bit-identical to a serial, never-interrupted run.
func TestFarmChaosMigration(t *testing.T) {
	spec := farmSpec()
	golden := serialResults(t, spec)

	coord, err := NewCoordinator(Options{Dir: t.TempDir(), LeaseTTL: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(coord)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := NewClient(ts.URL)
	id, created, err := cl.Submit(spec)
	if err != nil || !created {
		t.Fatalf("submit: id=%s created=%v err=%v", id, created, err)
	}

	// Worker A: serial engine, hard-crashes after its first checkpoint
	// upload. It must exit with the chaos sentinel, leaving its lease live.
	errA := RunWorker(context.Background(), WorkerOptions{
		URL:              ts.URL,
		Name:             "chaos-a",
		Workers:          1,
		Poll:             20 * time.Millisecond,
		KillAfterUploads: 1,
		Output:           io.Discard,
	})
	if !errors.Is(errA, ErrChaosKilled) {
		t.Fatalf("worker A: want chaos kill, got %v", errA)
	}
	view, err := coord.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if view.Done {
		t.Fatal("campaign done with a dead worker holding a lease")
	}

	// Worker B: two engine goroutines (bit-identity must hold across worker
	// counts). It picks up the untouched point immediately, waits out A's
	// lease, steals point 0 with its checkpoint, and drains the campaign.
	errB := RunWorker(context.Background(), WorkerOptions{
		URL:          ts.URL,
		Name:         "mig-b",
		Workers:      2,
		Poll:         20 * time.Millisecond,
		ExitWhenDone: true,
		Output:       io.Discard,
	})
	if errB != nil {
		t.Fatalf("worker B: %v", errB)
	}

	if !coord.Done() {
		t.Fatal("worker B exited but coordinator not done")
	}
	man, err := coord.Manifest(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range man.Points {
		rec := man.Points[i]
		if rec.Status != StatusCompleted || rec.Result == nil {
			t.Fatalf("point %d not completed: %+v", i, rec)
		}
		if !reflect.DeepEqual(*rec.Result, golden[i]) {
			t.Errorf("point %d result diverged from serial run:\n  farm   %+v\n  serial %+v",
				i, *rec.Result, golden[i])
		}
	}

	// Point 0 must prove the migration: finished by B, on its second
	// attempt, resumed from the cycle A checkpointed at.
	p0 := man.Points[0]
	if p0.Worker != "mig-b" {
		t.Errorf("point 0 finished by %q, want the stealing worker", p0.Worker)
	}
	if p0.Attempts != 2 {
		t.Errorf("point 0 attempts = %d, want 2 (A's grant + B's steal)", p0.Attempts)
	}
	if p0.ResumedFrom <= 0 {
		t.Errorf("point 0 resumed_from = %d, want a positive checkpoint cycle", p0.ResumedFrom)
	}
	if p0.Checkpoint != "" {
		t.Errorf("point 0 checkpoint not cleared after commit: %q", p0.Checkpoint)
	}

	// The farm counters saw the story too.
	counters := map[string]float64{}
	for _, s := range coord.Registry().Snapshot() {
		counters[s.Name] = s.Value
	}
	if counters["farm_checkpoint_resume_grants_total"] < 1 {
		t.Errorf("no resume grant counted: %v", counters["farm_checkpoint_resume_grants_total"])
	}
	if counters["farm_leases_expired_total"] < 1 {
		t.Errorf("no lease expiry counted: %v", counters["farm_leases_expired_total"])
	}
	if counters["farm_points_completed_total"] != 2 {
		t.Errorf("completed counter = %v, want 2", counters["farm_points_completed_total"])
	}

	// The merged view aggregates both points' stats.
	final, err := coord.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done || final.MergedResult == nil {
		t.Fatalf("final status incomplete: done=%v merged=%v", final.Done, final.MergedResult)
	}
	wantDelivered := golden[0].Delivered + golden[1].Delivered
	if final.MergedResult.Delivered != wantDelivered {
		t.Errorf("merged delivered = %d, want %d", final.MergedResult.Delivered, wantDelivered)
	}
}

// TestFarmInterruptReleasesLease covers the graceful half of migration: a
// cancelled worker abandons cleanly and a second worker finishes the
// campaign with results still bit-identical to serial.
func TestFarmInterruptReleasesLease(t *testing.T) {
	spec := farmSpec()
	golden := serialResults(t, spec)

	coord, err := NewCoordinator(Options{LeaseTTL: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(coord)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := NewClient(ts.URL)
	id, _, err := cl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel worker A shortly after it starts its first point.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	errA := RunWorker(ctx, WorkerOptions{
		URL:    ts.URL,
		Name:   "cancelled-a",
		Poll:   20 * time.Millisecond,
		Output: io.Discard,
	})
	if !errors.Is(errA, context.Canceled) {
		t.Fatalf("worker A: want context.Canceled, got %v", errA)
	}

	errB := RunWorker(context.Background(), WorkerOptions{
		URL:          ts.URL,
		Name:         "finisher-b",
		Poll:         20 * time.Millisecond,
		ExitWhenDone: true,
		Output:       io.Discard,
	})
	if errB != nil {
		t.Fatalf("worker B: %v", errB)
	}
	man, err := coord.Manifest(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range man.Points {
		if man.Points[i].Status != StatusCompleted {
			t.Fatalf("point %d not completed: %+v", i, man.Points[i])
		}
		if !reflect.DeepEqual(*man.Points[i].Result, golden[i]) {
			t.Errorf("point %d diverged from serial run", i)
		}
	}
}
