package campaign

// Client is the worker side of the dispatch protocol: thin typed wrappers
// over the coordinator's HTTP API. Transport failures on mutating calls are
// retried with capped exponential backoff — every mutating call is
// idempotent or lease-guarded, so a response lost on the wire is safe to
// replay (a replayed Complete whose first copy landed is rejected as
// ErrLeaseLost, which callers treat as "already committed elsewhere").

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"wormnet/internal/fault"
)

// ErrRejected marks a request the coordinator refused outright (version,
// protocol or digest skew). Not retryable.
var ErrRejected = errors.New("campaign: request rejected by coordinator")

// DefaultTransportRetry is the capped-backoff policy for transport errors
// (delays read in milliseconds, like cmd/sweep's point retries).
var DefaultTransportRetry = fault.RetryPolicy{MaxRetries: 6, BackoffBase: 100, BackoffCap: 2000}

// Client talks to one coordinator.
type Client struct {
	base  string
	hc    *http.Client
	retry fault.RetryPolicy
	sleep func(time.Duration) // test hook
}

// NewClient builds a client for the coordinator at base
// (e.g. "http://127.0.0.1:8080").
func NewClient(base string) *Client {
	return &Client{
		base:  strings.TrimRight(base, "/"),
		hc:    &http.Client{Timeout: 30 * time.Second},
		retry: DefaultTransportRetry,
		sleep: time.Sleep,
	}
}

// do performs one HTTP call, mapping non-2xx statuses onto the
// coordinator's typed errors.
func (c *Client) do(method, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("campaign: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxCheckpointBytes))
	if err != nil {
		return fmt.Errorf("campaign: read %s: %w", path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		detail := strings.TrimSpace(string(data))
		switch resp.StatusCode {
		case http.StatusGone:
			return fmt.Errorf("%w: %s", ErrLeaseLost, detail)
		case http.StatusNotFound:
			return fmt.Errorf("%w: %s", ErrUnknownCampaign, detail)
		case http.StatusConflict:
			return fmt.Errorf("%w: %s", ErrRejected, detail)
		default:
			return fmt.Errorf("campaign: %s %s: http %d: %s", method, path, resp.StatusCode, detail)
		}
	}
	if out != nil {
		if raw, ok := out.(*[]byte); ok {
			*raw = data
			return nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("campaign: decode %s response: %w", path, err)
		}
	}
	return nil
}

// retryable reports whether an error is worth replaying: transport
// failures and 5xx yes; typed refusals no.
func retryable(err error) bool {
	return !errors.Is(err, ErrLeaseLost) && !errors.Is(err, ErrUnknownCampaign) &&
		!errors.Is(err, ErrRejected)
}

// doRetry replays do with capped backoff on retryable errors.
func (c *Client) doRetry(method, path, contentType string, body []byte, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.do(method, path, contentType, body, out)
		if err == nil || !retryable(err) || c.retry.Exhausted(attempt+1) {
			return err
		}
		c.sleep(time.Duration(c.retry.Delay(attempt)) * time.Millisecond)
	}
}

func marshal(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("campaign: marshal request: %v", err)) // plain data; cannot fail
	}
	return data
}

// Submit registers a spec (idempotent) and returns the campaign id.
func (c *Client) Submit(spec *Spec) (id string, created bool, err error) {
	var resp struct {
		ID      string `json:"id"`
		Created bool   `json:"created"`
	}
	if err := c.doRetry("POST", "/campaigns", "application/json", marshal(spec), &resp); err != nil {
		return "", false, err
	}
	return resp.ID, resp.Created, nil
}

// Acquire asks for a point lease. Not retried internally — the worker loop
// owns acquire pacing.
func (c *Client) Acquire(req AcquireRequest) (*AcquireResponse, error) {
	var resp AcquireResponse
	if err := c.do("POST", "/acquire", "application/json", marshal(req), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Renew heartbeats a lease with the latest progress snapshot.
func (c *Client) Renew(campaign, lease string, req RenewRequest) error {
	return c.do("POST", "/campaigns/"+campaign+"/leases/"+lease+"/renew",
		"application/json", marshal(req), nil)
}

// UploadCheckpoint ships WNCP bytes for the leased point.
func (c *Client) UploadCheckpoint(campaign, lease string, data []byte) error {
	return c.doRetry("POST", "/campaigns/"+campaign+"/leases/"+lease+"/checkpoint",
		"application/octet-stream", data, nil)
}

// DownloadCheckpoint fetches the migrated checkpoint bytes for a point.
func (c *Client) DownloadCheckpoint(campaign string, point int) ([]byte, error) {
	var data []byte
	err := c.doRetry("GET", fmt.Sprintf("/campaigns/%s/points/%d/checkpoint", campaign, point),
		"", nil, &data)
	return data, err
}

// Complete commits a finished point (exactly once, lease-guarded).
func (c *Client) Complete(campaign, lease string, req CompleteRequest) error {
	return c.doRetry("POST", "/campaigns/"+campaign+"/leases/"+lease+"/complete",
		"application/json", marshal(req), nil)
}

// Fail reports a non-completed attempt.
func (c *Client) Fail(campaign, lease string, req FailRequest) error {
	return c.doRetry("POST", "/campaigns/"+campaign+"/leases/"+lease+"/fail",
		"application/json", marshal(req), nil)
}

// Status fetches a campaign's live progress view.
func (c *Client) Status(campaign string) (*StatusView, error) {
	var view StatusView
	if err := c.do("GET", "/campaigns/"+campaign, "", nil, &view); err != nil {
		return nil, err
	}
	return &view, nil
}
