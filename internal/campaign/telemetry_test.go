package campaign

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wormnet/internal/metrics"
)

// TestProgressAndETA pins the live-progress math on the test clock: lease
// heartbeats turn into fractional point progress, completed points into a
// rate, and the two into an ETA.
func TestProgressAndETA(t *testing.T) {
	c, clk := newTestCoordinator(t, "")
	spec := testSpec() // 2 points, 600 cycles each
	id, _, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	view, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if view.Progress != 0 || view.ElapsedMS != 0 || view.EtaMS != -1 {
		t.Fatalf("pre-grant view: progress=%v elapsed=%d eta=%d, want 0/0/-1",
			view.Progress, view.ElapsedMS, view.EtaMS)
	}

	resp, err := c.Acquire(acquireReq("w1"))
	if err != nil || resp.Status != AcquireWork {
		t.Fatalf("acquire: %+v err=%v", resp, err)
	}
	a := resp.Assignment
	if err := c.Renew(id, a.Lease, RenewRequest{Cycle: 300}); err != nil {
		t.Fatal(err)
	}
	view, err = c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Leases) != 1 || view.Leases[0].Progress != 0.5 {
		t.Fatalf("lease at cycle 300/600 should show progress 0.5: %+v", view.Leases)
	}
	if view.Progress != 0.25 {
		t.Fatalf("campaign progress = %v, want 0.25 (half of one of two points)", view.Progress)
	}

	clk.advance(10 * time.Second)
	c.expireLeases(clk.now()) // the lease TTL is 1s; re-grant after expiry
	resp, err = c.Acquire(acquireReq("w1"))
	if err != nil || resp.Status != AcquireWork {
		t.Fatalf("re-acquire: %+v err=%v", resp, err)
	}
	a = resp.Assignment
	if err := c.Complete(id, a.Lease, CompleteRequest{Digest: a.Digest}); err != nil {
		t.Fatal(err)
	}
	view, err = c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if view.Progress != 0.5 {
		t.Fatalf("one of two points done: progress = %v, want 0.5", view.Progress)
	}
	if view.ElapsedMS != 10_000 {
		t.Fatalf("elapsed = %dms, want 10000", view.ElapsedMS)
	}
	// Half done in 10s extrapolates to 10s remaining.
	if view.EtaMS != 10_000 {
		t.Fatalf("eta = %dms, want 10000", view.EtaMS)
	}

	resp, err = c.Acquire(acquireReq("w2"))
	if err != nil || resp.Status != AcquireWork {
		t.Fatalf("acquire point 1: %+v err=%v", resp, err)
	}
	a = resp.Assignment
	if err := c.Complete(id, a.Lease, CompleteRequest{Digest: a.Digest}); err != nil {
		t.Fatal(err)
	}
	view, err = c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if !view.Done || view.Progress != 1 || view.EtaMS != 0 {
		t.Fatalf("done campaign: done=%v progress=%v eta=%d, want true/1/0",
			view.Done, view.Progress, view.EtaMS)
	}
}

// engSamples builds a heartbeat metrics snapshot with one delivered/denied
// counter pair.
func engSamples(t *testing.T, delivered, denied int64) []metrics.Sample {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.NewCounter("sim_messages_delivered_total", "").Add(delivered)
	reg.NewCounter("sim_injection_denied_total", "").Add(denied)
	return reg.Snapshot()
}

// TestFarmView checks the fleet snapshot: campaign rows, worker rows with
// point value and progress, and message totals merged across committed
// points and live heartbeats.
func TestFarmView(t *testing.T) {
	c, _ := newTestCoordinator(t, "")
	spec := testSpec()
	id, _, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Point 0 completes carrying engine metrics; point 1 stays live with a
	// heartbeat snapshot.
	resp, err := c.Acquire(acquireReq("w1"))
	if err != nil || resp.Status != AcquireWork {
		t.Fatalf("acquire: %+v err=%v", resp, err)
	}
	a := resp.Assignment
	if err := c.Complete(id, a.Lease, CompleteRequest{
		Digest:  a.Digest,
		Metrics: engSamples(t, 100, 7),
	}); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Acquire(acquireReq("w2"))
	if err != nil || resp.Status != AcquireWork {
		t.Fatalf("acquire point 1: %+v err=%v", resp, err)
	}
	a = resp.Assignment
	if err := c.Renew(id, a.Lease, RenewRequest{Cycle: 150, Metrics: engSamples(t, 40, 3)}); err != nil {
		t.Fatal(err)
	}

	farm := c.Farm()
	if len(farm.Campaigns) != 1 {
		t.Fatalf("farm lists %d campaigns, want 1", len(farm.Campaigns))
	}
	row := farm.Campaigns[0]
	if row.ID != id || row.Points != 2 || row.Completed != 1 || row.Running != 1 || row.Done {
		t.Fatalf("campaign row wrong: %+v", row)
	}
	if row.Progress != 0.625 { // (1 + 150/600) / 2
		t.Fatalf("campaign progress = %v, want 0.625", row.Progress)
	}
	if len(farm.Workers) != 1 {
		t.Fatalf("farm lists %d workers, want 1", len(farm.Workers))
	}
	w := farm.Workers[0]
	if w.Worker != "w2" || w.Campaign != id || w.Point != a.Point || w.Cycle != 150 || w.Progress != 0.25 {
		t.Fatalf("worker row wrong: %+v", w)
	}
	if w.Value != spec.Values[a.Point] {
		t.Fatalf("worker row value = %q, want swept value %q", w.Value, spec.Values[a.Point])
	}
	if farm.Delivered != 140 || farm.Denied != 10 {
		t.Fatalf("merged totals delivered=%d denied=%d, want 140/10", farm.Delivered, farm.Denied)
	}
}

// readSSE reads the first data: line of a server-sent-event stream into v.
func readSSE(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("%s: content type %q", url, ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			if err := json.Unmarshal([]byte(line), v); err != nil {
				t.Fatalf("decode SSE event: %v", err)
			}
			return
		}
	}
	t.Fatalf("%s: stream ended without a data event: %v", url, sc.Err())
}

// TestTelemetryEndpoints drives the HTTP face: /farm JSON, both SSE
// streams, and the embedded dashboard.
func TestTelemetryEndpoints(t *testing.T) {
	c, _ := newTestCoordinator(t, "")
	id, _, err := c.Submit(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(acquireReq("w1")); err != nil {
		t.Fatal(err)
	}
	s := NewServer(c)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Close()

	resp, err := http.Get(srv.URL + "/farm")
	if err != nil {
		t.Fatal(err)
	}
	var farm FarmView
	if err := json.NewDecoder(resp.Body).Decode(&farm); err != nil {
		t.Fatalf("decode /farm: %v", err)
	}
	resp.Body.Close()
	if len(farm.Campaigns) != 1 || farm.Campaigns[0].Running != 1 {
		t.Fatalf("/farm view wrong: %+v", farm)
	}

	var sseFarm FarmView
	readSSE(t, srv.URL+"/farm/events?interval_ms=100", &sseFarm)
	if len(sseFarm.Campaigns) != 1 || sseFarm.Campaigns[0].ID != id {
		t.Fatalf("/farm/events first event wrong: %+v", sseFarm)
	}

	var status StatusView
	readSSE(t, srv.URL+"/campaigns/"+id+"/events?interval_ms=100", &status)
	if status.ID != id || len(status.Leases) != 1 {
		t.Fatalf("/campaigns/{id}/events first event wrong: %+v", status)
	}

	resp, err = http.Get(srv.URL + "/campaigns/nosuch/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown campaign: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("/dash: status %d type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body[:n]), "/farm/events") {
		t.Fatal("/dash page does not subscribe to /farm/events")
	}
}
