package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// shortHash fingerprints a config digest (a long key=value line) to 12 hex
// digits for log lines and error messages.
func shortHash(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:6])
}

// writeFileAtomic lands data under path via temp file + rename, so a crash
// mid-write never leaves a torn file under the final name.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // best-effort; gone after rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// jsonMarshalIndent is the journal's JSON rendering (trailing newline, two
// space indent, like the manifest).
func jsonMarshalIndent(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
