package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"wormnet/internal/sim"
)

func testSpec() *Spec {
	s := DefaultSpec()
	s.Vary = "rate"
	s.Values = []string{"0.3", "0.6"}
	s.K, s.N = 4, 2
	s.WarmupCycles, s.MeasureCycles, s.DrainCycles = 100, 400, 100
	return &s
}

func TestDecodeSpecDefaults(t *testing.T) {
	spec, err := DecodeSpec(strings.NewReader(`{"vary":"rate","values":["0.3","0.6"]}`))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultSpec()
	if spec.K != def.K || spec.VCs != def.VCs || spec.Limiter != def.Limiter ||
		spec.CheckpointEvery != def.CheckpointEvery || spec.Retries != def.Retries {
		t.Fatalf("absent fields did not take defaults: %+v", spec)
	}
}

// TestDecodeSpecZeroValues pins the reason Spec has no omitempty on config
// numerics: an explicit zero that differs from the default must survive a
// round-trip, or the campaign id and every config digest drift.
func TestDecodeSpecZeroValues(t *testing.T) {
	in := `{"vary":"rate","values":["0.3"],"detection_threshold":0,"warmup_cycles":0,"checkpoint_every":0,"point_retries":0,"seed":0}`
	spec, err := DecodeSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if spec.DetectionThreshold != 0 || spec.WarmupCycles != 0 ||
		spec.CheckpointEvery != 0 || spec.Retries != 0 || spec.Seed != 0 {
		t.Fatalf("explicit zeros overwritten by defaults: %+v", spec)
	}
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := DecodeSpec(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, spec) {
		t.Fatalf("round-trip drifted:\n  first  %+v\n  second %+v", spec, again)
	}
	if again.ID() != spec.ID() {
		t.Fatal("round-trip changed the campaign id")
	}
}

func TestDecodeSpecStrictness(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"vary":"rate","values":["0.3"],"warmup_cycels":5}`,
		"trailing data": `{"vary":"rate","values":["0.3"]} {"more":1}`,
		"no values":     `{"vary":"rate"}`,
		"bad vary":      `{"vary":"voltage","values":["0.3"]}`,
		"bad value":     `{"vary":"rate","values":["fast"]}`,
		"bad limiter":   `{"vary":"rate","values":["0.3"],"limiter":"magic"}`,
		"bad faults":    `{"vary":"rate","values":["0.3"],"faults":1.5}`,
		"neg retries":   `{"vary":"rate","values":["0.3"],"point_retries":-1}`,
		"huge topology": `{"vary":"rate","values":["0.3"],"k":4096,"n":6}`,
		"huge vcs":      `{"vary":"vcs","values":["100000"]}`,
		"neg workers":   `{"vary":"rate","values":["0.3"],"engine_workers":-1}`,
		"huge workers":  `{"vary":"rate","values":["0.3"],"engine_workers":1000}`,
		"not json":      `whatever`,
	}
	for name, in := range cases {
		if _, err := DecodeSpec(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestSpecEngineWorkers covers the per-campaign engine worker override:
// engine_workers decodes and round-trips, defaults to 0 (worker's choice),
// and — because the worker count never enters a config digest — two specs
// differing only in engine_workers expand to identical point digests.
func TestSpecEngineWorkers(t *testing.T) {
	spec, err := DecodeSpec(strings.NewReader(`{"vary":"rate","values":["0.3"],"engine_workers":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.EngineWorkers != 4 {
		t.Fatalf("engine_workers = %d, want 4", spec.EngineWorkers)
	}
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := DecodeSpec(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if again.EngineWorkers != 4 {
		t.Fatalf("engine_workers lost in round-trip: %+v", again)
	}

	plain, err := DecodeSpec(strings.NewReader(`{"vary":"rate","values":["0.3"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if plain.EngineWorkers != 0 {
		t.Fatalf("absent engine_workers = %d, want 0 (worker decides)", plain.EngineWorkers)
	}
	if plain.ID() == spec.ID() {
		t.Fatal("engine_workers must be part of the campaign id")
	}
	pp, err := plain.Points()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	if pp[0].Digest != sp[0].Digest {
		t.Fatal("engine_workers leaked into the config digest; checkpoints would stop migrating across fleets")
	}
}

// TestSpecPointsMatchManualConfig proves the spec expansion and a hand-built
// sim.Config agree digest-for-digest — the property that lets coordinator
// and workers verify each other.
func TestSpecPointsMatchManualConfig(t *testing.T) {
	spec := testSpec()
	points, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	cfg := sim.DefaultConfig()
	cfg.K, cfg.N = 4, 2
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 100, 400, 100
	f, err := LimiterByName("alo")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Limiter, cfg.LimiterName = f, "alo"
	cfg.Rate = 0.6
	want, err := sim.ConfigDigest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if points[1].Digest != want {
		t.Fatalf("digest mismatch:\n  spec   %s\n  manual %s", points[1].Digest, want)
	}
	// Expansion is deterministic across calls.
	again, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i].Digest != again[i].Digest {
			t.Fatalf("point %d digest unstable", i)
		}
	}
}

func TestSpecIDIdempotent(t *testing.T) {
	a, b := testSpec(), testSpec()
	if a.ID() != b.ID() {
		t.Fatal("identical specs mapped to different ids")
	}
	b.Seed = 99
	if a.ID() == b.ID() {
		t.Fatal("different specs mapped to the same id")
	}
}

func TestSpecFaultsSweep(t *testing.T) {
	spec := testSpec()
	spec.Vary = "faults"
	spec.Values = []string{"0", "0.05"}
	points, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Digest == points[1].Digest {
		t.Fatal("fault plans did not differentiate the digests")
	}
}

func TestLimiterByName(t *testing.T) {
	for _, name := range []string{"none", "lf", "dril", "alo", "alo-rule-a", "alo-rule-b", "alo-all-channels"} {
		if _, err := LimiterByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := LimiterByName("nope"); err == nil {
		t.Error("unknown limiter accepted")
	}
}

// FuzzCampaignSpecDecode throws arbitrary bytes at the spec decoder. The
// invariants: no panic, no absurd allocation (bounds are enforced before
// topology walks), and every accepted spec round-trips through its own JSON
// to the same campaign id and point digests — the property idempotent
// submission and digest verification stand on.
func FuzzCampaignSpecDecode(f *testing.F) {
	f.Add([]byte(`{"vary":"rate","values":["0.1","0.3","0.5"]}`))
	f.Add([]byte(`{"vary":"vcs","values":["1","2","3"],"rate":0.5,"k":4,"n":2}`))
	f.Add([]byte(`{"vary":"faults","values":["0","0.05"],"fault_seed":3}`))
	f.Add([]byte(`{"vary":"threshold","values":["0","16","32"],"detection_threshold":0}`))
	f.Add([]byte(`{"vary":"rate","values":["0.3"],"limiter":"alo-rule-a","checkpoint_every":0,"point_retries":0}`))
	f.Add([]byte(`{"vary":"msglen","values":["8","16"],"warmup_cycles":0,"seed":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"vary":"rate","values":["0.3"],"k":4096,"n":6}`))
	f.Add([]byte(`{"vary":"rate","values":["0.3"]} trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; not crashing is the point
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		again, err := DecodeSpec(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("accepted spec does not re-decode: %v\njson: %s", err, out)
		}
		if spec.ID() != again.ID() {
			t.Fatalf("round-trip changed id: %s vs %s\njson: %s", spec.ID(), again.ID(), out)
		}
		a, err := spec.Points()
		if err != nil {
			t.Fatalf("accepted spec stopped expanding: %v", err)
		}
		b, err := again.Points()
		if err != nil {
			t.Fatalf("round-tripped spec stopped expanding: %v", err)
		}
		if len(a) != len(b) {
			t.Fatalf("round-trip changed point count: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i].Digest != b[i].Digest {
				t.Fatalf("round-trip changed point %d digest", i)
			}
		}
	})
}
