package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestFarmConcurrencyStress hammers one coordinator from many fronts at
// once — goroutine workers acquiring, renewing, checkpointing, completing,
// failing and silently abandoning leases, while scrapers poll the status
// and metrics endpoints — and then checks the books balance: every point
// terminal, completed+failed counters matching the manifest, no lease left
// behind. Run it under -race; that is its real job.
func TestFarmConcurrencyStress(t *testing.T) {
	spec := testSpec()
	spec.Values = []string{
		"0.10", "0.15", "0.20", "0.25", "0.30", "0.35", "0.40", "0.45",
		"0.50", "0.55", "0.60", "0.65", "0.70", "0.75", "0.80", "0.85",
	}
	spec.Retries = 4

	coord, err := NewCoordinator(Options{LeaseTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(coord)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := NewClient(ts.URL)
	id, _, err := cl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// One valid checkpoint blob, uploaded on random leases to stress the
	// store path (decode validation only cares the bytes are a real WNCP).
	ckpt := snapshotBytes(t, spec, 0, 100)

	const workers = 8
	deadline := time.Now().Add(20 * time.Second)
	var wg sync.WaitGroup
	errCh := make(chan error, workers+2)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("stress-%d", w)
			for iter := 0; time.Now().Before(deadline); iter++ {
				resp, err := cl.Acquire(AcquireRequest{
					Worker: name, Version: coord.Version(), Protocol: ProtocolVersion,
				})
				if err != nil {
					errCh <- fmt.Errorf("%s acquire: %w", name, err)
					return
				}
				switch resp.Status {
				case AcquireDone:
					return
				case AcquireWait:
					time.Sleep(5 * time.Millisecond)
					continue
				}
				a := resp.Assignment
				// Deterministic per-(worker,iteration) behaviour mix. Stale
				// errors are expected everywhere: another goroutine or the TTL
				// may have taken the lease between our calls.
				switch (w + iter) % 8 {
				case 0, 1, 2: // plain commit
					cl.Complete(a.Campaign, a.Lease, CompleteRequest{Digest: a.Digest}) //nolint:errcheck
				case 3: // checkpoint then commit
					cl.UploadCheckpoint(a.Campaign, a.Lease, ckpt)                      //nolint:errcheck
					cl.Complete(a.Campaign, a.Lease, CompleteRequest{Digest: a.Digest}) //nolint:errcheck
				case 4: // renew then commit
					cl.Renew(a.Campaign, a.Lease, RenewRequest{Cycle: int64(iter)})     //nolint:errcheck
					cl.Complete(a.Campaign, a.Lease, CompleteRequest{Digest: a.Digest}) //nolint:errcheck
				case 5: // crash
					cl.Fail(a.Campaign, a.Lease, FailRequest{Outcome: "crashed", Error: "stress"}) //nolint:errcheck
				case 6: // interrupt (does not consume an attempt)
					cl.Fail(a.Campaign, a.Lease, FailRequest{Outcome: "interrupted"}) //nolint:errcheck
				case 7: // silent death; the TTL reaps it
					time.Sleep(60 * time.Millisecond)
				}
			}
		}(w)
	}

	// Scrapers: JSON status and Prometheus text, concurrently with the herd.
	done := make(chan struct{})
	for _, path := range []string{"/campaigns/" + id, "/metrics"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errCh <- fmt.Errorf("scrape %s: %w", path, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("scrape %s: %d: %s", path, resp.StatusCode, body)
					return
				}
				if path != "/metrics" {
					var v StatusView
					if err := json.Unmarshal(body, &v); err != nil {
						errCh <- fmt.Errorf("scrape %s: bad json: %w", path, err)
						return
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(path)
	}

	wgWait := make(chan struct{})
	go func() { wg.Wait(); close(wgWait) }()

	// Poll for campaign completion while everything runs.
	for !coord.Done() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	close(done)
	<-wgWait
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	if !coord.Done() {
		t.Fatal("stress campaign did not converge before the deadline")
	}
	man, err := coord.Manifest(id)
	if err != nil {
		t.Fatal(err)
	}
	completed, failed := 0, 0
	for i := range man.Points {
		rec := man.Points[i]
		if !rec.Status.Terminal() {
			t.Errorf("point %d not terminal: %+v", i, rec)
		}
		switch rec.Status {
		case StatusCompleted:
			completed++
			if rec.Worker == "" {
				t.Errorf("point %d completed with no worker recorded", i)
			}
		case StatusFailed, StatusStalled:
			failed++
			if rec.Attempts < maxAttempts(spec.Retries) {
				t.Errorf("point %d terminal after only %d attempts", i, rec.Attempts)
			}
		}
	}
	if completed+failed != len(man.Points) {
		t.Errorf("books don't balance: %d completed + %d failed != %d points",
			completed, failed, len(man.Points))
	}

	view, err := coord.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Leases) != 0 {
		t.Errorf("leases outlived the campaign: %+v", view.Leases)
	}
	gauges := map[string]float64{}
	for _, s := range coord.Registry().Snapshot() {
		gauges[s.Name] = s.Value
	}
	if gauges["farm_points_completed_total"] != float64(completed) {
		t.Errorf("completed counter %v, manifest says %d", gauges["farm_points_completed_total"], completed)
	}
}
