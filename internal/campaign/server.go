package campaign

// The coordinator's HTTP face. Campaign routes live next to the standard
// obs.Monitor surface (/healthz with build version, /debug/pprof/*), and
// the farm's own metrics are served in Prometheus text form:
//
//	POST /campaigns                           submit a spec (idempotent)
//	GET  /campaigns                           list campaigns
//	GET  /campaigns/{id}                      live progress view
//	POST /campaigns/{id}/acquire              lease a point (also POST /acquire)
//	POST /campaigns/{id}/leases/{lease}/renew       heartbeat + live metrics
//	POST /campaigns/{id}/leases/{lease}/checkpoint  upload WNCP bytes
//	POST /campaigns/{id}/leases/{lease}/complete    exactly-once commit
//	POST /campaigns/{id}/leases/{lease}/fail        report a failed attempt
//	GET  /campaigns/{id}/points/{point}/checkpoint  download migrated WNCP bytes
//	GET  /campaigns/{id}/events               live StatusView stream (SSE)
//	GET  /farm                                fleet telemetry snapshot (JSON)
//	GET  /farm/events                         live FarmView stream (SSE)
//	GET  /dash                                dependency-free HTML dashboard
//	GET  /metrics /healthz /debug/pprof/*
//
// Graceful drain follows the obs.Monitor protocol: Shutdown flips /healthz
// to 503 and stops granting leases, lets in-flight requests finish, then
// closes the listener.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wormnet/internal/obs"
)

// maxCheckpointBytes bounds one uploaded checkpoint (64 MiB — an 8-ary
// 3-cube snapshot is well under 1 MiB).
const maxCheckpointBytes = 64 << 20

// Server exposes a Coordinator over HTTP.
type Server struct {
	coord   *Coordinator
	monitor *obs.Monitor
	mux     *http.ServeMux

	// done unblocks long-lived SSE streams on Shutdown/Close so a drain
	// with live dashboards does not hang until its timeout.
	done     chan struct{}
	doneOnce sync.Once
}

// NewServer builds the HTTP face of a coordinator. The monitor handles
// /metrics, /healthz, /snapshot and /debug/pprof/*; it reports the
// coordinator's build version on /healthz so probes can spot version skew
// from the outside.
func NewServer(coord *Coordinator) *Server {
	monitor := obs.NewMonitor(coord.Registry(), obs.NewManifest("campaignd", 0, nil), nil)
	monitor.SetBuildInfo(coord.Version())
	s := &Server{coord: coord, monitor: monitor, mux: http.NewServeMux(), done: make(chan struct{})}

	s.mux.HandleFunc("POST /campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /campaigns", s.handleList)
	s.mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /acquire", s.handleAcquire)
	s.mux.HandleFunc("POST /campaigns/{id}/acquire", s.handleAcquire)
	s.mux.HandleFunc("POST /campaigns/{id}/leases/{lease}/renew", s.handleRenew)
	s.mux.HandleFunc("POST /campaigns/{id}/leases/{lease}/checkpoint", s.handleUploadCheckpoint)
	s.mux.HandleFunc("POST /campaigns/{id}/leases/{lease}/complete", s.handleComplete)
	s.mux.HandleFunc("POST /campaigns/{id}/leases/{lease}/fail", s.handleFail)
	s.mux.HandleFunc("GET /campaigns/{id}/points/{point}/checkpoint", s.handleDownloadCheckpoint)
	s.mux.HandleFunc("GET /campaigns/{id}/events", s.handleCampaignEvents)
	s.mux.HandleFunc("GET /farm", s.handleFarm)
	s.mux.HandleFunc("GET /farm/events", s.handleFarmEvents)
	s.mux.HandleFunc("GET /dash", s.handleDash)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("/", monitor.Handler())
	return s
}

// Handler returns the full route table (tests mount it on httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Monitor returns the embedded obs monitor (drain control, /healthz).
func (s *Server) Monitor() *obs.Monitor { return s.monitor }

// Serve binds addr and serves in the background until Shutdown/Close.
func (s *Server) Serve(addr string) error {
	// The monitor owns the listener and server lifecycle; route everything
	// through our mux (which falls back to the monitor's handlers).
	return s.monitor.ServeHandler(addr, s.mux)
}

// Addr returns the bound address ("" before Serve).
func (s *Server) Addr() string { return s.monitor.Addr() }

// Shutdown drains gracefully: stop granting leases, flip /healthz to 503,
// give in-flight requests up to timeout, then close.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.coord.BeginDrain()
	s.doneOnce.Do(func() { close(s.done) })
	return s.monitor.Shutdown(timeout)
}

// Close stops serving immediately.
func (s *Server) Close() error {
	s.doneOnce.Do(func() { close(s.done) })
	return s.monitor.Close()
}

// httpError maps coordinator errors onto status codes. Workers treat 410 as
// "lease lost, abandon the point" and 409 as "refused, do not retry".
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownCampaign):
		code = http.StatusNotFound
	case errors.Is(err, ErrLeaseLost):
		code = http.StatusGone
	case errors.Is(err, ErrVersionSkew), errors.Is(err, ErrProtocolSkew), errors.Is(err, ErrDigestMismatch):
		code = http.StatusConflict
	case errors.Is(err, ErrBadCheckpoint):
		code = http.StatusBadRequest
	}
	http.Error(w, err.Error(), code)
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeSpec(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, created, err := s.coord.Submit(spec)
	if err != nil {
		httpError(w, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, map[string]any{"id": id, "created": created})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	view, err := s.coord.Status(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req AcquireRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxSpecBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("campaign: decode acquire: %v", err), http.StatusBadRequest)
		return
	}
	if id := r.PathValue("id"); id != "" {
		req.Campaign = id
	}
	resp, err := s.coord.Acquire(req)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxCheckpointBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("campaign: decode renew: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.coord.Renew(r.PathValue("id"), r.PathValue("lease"), req); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleUploadCheckpoint(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCheckpointBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("campaign: read checkpoint: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.coord.StoreCheckpoint(r.PathValue("id"), r.PathValue("lease"), data); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "bytes": len(data)})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxCheckpointBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("campaign: decode complete: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.coord.Complete(r.PathValue("id"), r.PathValue("lease"), req); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxSpecBytes)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("campaign: decode fail: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.coord.Fail(r.PathValue("id"), r.PathValue("lease"), req); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleDownloadCheckpoint(w http.ResponseWriter, r *http.Request) {
	point, err := strconv.Atoi(r.PathValue("point"))
	if err != nil {
		http.Error(w, "campaign: bad point index", http.StatusBadRequest)
		return
	}
	data, ok, err := s.coord.GetCheckpoint(r.PathValue("id"), point)
	if err != nil {
		httpError(w, err)
		return
	}
	if !ok {
		http.Error(w, "campaign: no checkpoint for point", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck // client went away
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.coord.UpdateGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, s.coord.Registry()) //nolint:errcheck // client went away
}

func (s *Server) handleFarm(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.Farm())
}

func (s *Server) handleFarmEvents(w http.ResponseWriter, r *http.Request) {
	s.serveSSE(w, r, func() (any, error) { return s.coord.Farm(), nil })
}

func (s *Server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.coord.Status(id); err != nil {
		httpError(w, err) // reject unknown campaigns before committing to a stream
		return
	}
	s.serveSSE(w, r, func() (any, error) { return s.coord.Status(id) })
}

// sseInterval picks the stream period: ?interval_ms= within [100ms, 30s],
// default 1s.
func sseInterval(r *http.Request) time.Duration {
	d := time.Second
	if raw := r.URL.Query().Get("interval_ms"); raw != "" {
		if ms, err := strconv.Atoi(raw); err == nil {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	return min(max(d, 100*time.Millisecond), 30*time.Second)
}

// serveSSE streams snapshots from view as server-sent events until the
// client disconnects or the server shuts down. The first event is sent
// immediately so dashboards render without waiting a full period.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, view func() (any, error)) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "campaign: streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	tick := time.NewTicker(sseInterval(r))
	defer tick.Stop()
	for {
		v, err := view()
		if err != nil {
			return // campaign vanished mid-stream; client reconnects or gives up
		}
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return
		}
		flusher.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-tick.C:
		}
	}
}

func (s *Server) handleDash(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, dashboardHTML) //nolint:errcheck // client went away
}
