package campaign

// The worker is the farm's execution half: an acquire→run→commit loop around
// internal/supervisor. Each leased point is expanded locally from the spec
// the coordinator ships in the assignment, verified against the
// coordinator's config digest, and — when the point carries a migrated
// checkpoint from a dead worker — restored bit-identically before the
// supervisor takes over. While a point runs, a heartbeat goroutine renews
// the lease and streams the live metrics snapshot; the supervisor's
// checkpoint hook uploads WNCP bytes to the coordinator so the point stays
// migratable right up to the cycle it dies on.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"wormnet/internal/checkpoint"
	"wormnet/internal/metrics"
	"wormnet/internal/obs"
	"wormnet/internal/sim"
	"wormnet/internal/supervisor"
)

// ErrChaosKilled reports that the worker simulated a hard crash after
// KillAfterUploads checkpoint uploads: it abandoned its lease without
// failing it, exactly like a process that lost power. Chaos tests use it to
// force a checkpoint migration.
var ErrChaosKilled = errors.New("campaign: worker chaos-killed after checkpoint upload")

// ErrWorkerInterrupted reports that a subscribed signal stopped the worker
// mid-point; the final checkpoint was flushed to the coordinator first.
var ErrWorkerInterrupted = errors.New("campaign: worker interrupted by signal")

// errLeaseRevoked aborts the supervisor run from inside the checkpoint hook
// once the coordinator has stolen our lease: every further cycle would be
// wasted work that can never commit.
var errLeaseRevoked = errors.New("campaign: lease revoked, abandoning point")

// errChaosKill is the internal sentinel the checkpoint hook returns to crash
// the supervised run at the kill point.
var errChaosKill = errors.New("campaign: chaos kill")

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// URL is the coordinator's base URL (e.g. "http://127.0.0.1:8080").
	URL string
	// Name identifies this worker in leases and manifests.
	Name string
	// Campaign restricts the worker to one campaign id ("" = any).
	Campaign string
	// Workers is the engine goroutine count per point (0 = serial). Results
	// are bit-identical at any setting, so a heterogeneous fleet is fine.
	// A spec that sets engine_workers > 0 overrides this per campaign.
	Workers int
	// Poll is the idle wait between acquire attempts when the coordinator
	// has nothing assignable (0 = 500ms).
	Poll time.Duration
	// ExitWhenDone returns nil once every known campaign is finished
	// instead of polling for new ones.
	ExitWhenDone bool
	// KillAfterUploads > 0 simulates a hard crash: after that many
	// checkpoint uploads the worker exits with ErrChaosKilled, leaving its
	// lease to expire so another worker steals and resumes the point.
	KillAfterUploads int
	// Signals interrupt the current point gracefully (flush a final
	// checkpoint to the coordinator, release the lease, exit with
	// ErrWorkerInterrupted). Empty = no signal handling.
	Signals []os.Signal
	// Monitor, if set, gets the running point's config digest surfaced on
	// /healthz while a point executes.
	Monitor *obs.Monitor
	// Output receives progress lines (nil = os.Stderr).
	Output io.Writer

	// client overrides the HTTP client (tests).
	client *Client
}

// worker is the loop state behind RunWorker.
type worker struct {
	opts    WorkerOptions
	cl      *Client
	version string
	uploads int // checkpoint uploads so far (chaos accounting)
}

func (w *worker) logf(format string, args ...any) {
	out := w.opts.Output
	if out == nil {
		out = os.Stderr
	}
	fmt.Fprintf(out, "worker %s: "+format+"\n", append([]any{w.opts.Name}, args...)...)
}

// RunWorker runs the acquire→run→commit loop until the coordinator reports
// all work done (with ExitWhenDone), the context is cancelled, a subscribed
// signal interrupts a point, or the chaos kill fires. Transient coordinator
// errors are retried with capped backoff; refusals (version or digest skew)
// are fatal, because a skewed worker can only produce results the
// coordinator must reject.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Name == "" {
		host, _ := os.Hostname()
		opts.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	w := &worker{opts: opts, cl: opts.client, version: obs.BuildVersion()}
	if w.cl == nil {
		w.cl = NewClient(opts.URL)
	}

	retry := DefaultTransportRetry
	errStreak := 0
	for {
		if err := sleepCtx(ctx, 0); err != nil {
			return err
		}
		resp, err := w.cl.Acquire(AcquireRequest{
			Worker:   opts.Name,
			Version:  w.version,
			Protocol: ProtocolVersion,
			Campaign: opts.Campaign,
		})
		if err != nil {
			if errors.Is(err, ErrRejected) || errors.Is(err, ErrUnknownCampaign) {
				return err
			}
			errStreak++
			if retry.Exhausted(errStreak) {
				return fmt.Errorf("campaign: coordinator unreachable after %d attempts: %w", errStreak, err)
			}
			w.logf("acquire failed (attempt %d): %v", errStreak, err)
			if err := sleepCtx(ctx, time.Duration(retry.Delay(errStreak-1))*time.Millisecond); err != nil {
				return err
			}
			continue
		}
		errStreak = 0

		switch resp.Status {
		case AcquireDone:
			if opts.ExitWhenDone {
				w.logf("all campaigns done, exiting")
				return nil
			}
			if err := sleepCtx(ctx, opts.Poll); err != nil {
				return err
			}
		case AcquireWait:
			if err := sleepCtx(ctx, opts.Poll); err != nil {
				return err
			}
		case AcquireWork:
			if resp.Assignment == nil {
				return fmt.Errorf("campaign: coordinator sent work with no assignment")
			}
			if err := w.runAssignment(ctx, resp.Assignment); err != nil {
				return err
			}
		default:
			return fmt.Errorf("campaign: unknown acquire status %q", resp.Status)
		}
	}
}

// sleepCtx sleeps d (0 = just a cancellation check) or returns early with
// the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// runAssignment executes one leased point end to end. It returns nil to keep
// the worker loop going (including after a non-fatal point failure, which is
// the coordinator's retry problem) and an error only for worker-fatal
// conditions: context cancellation, signal interrupt, chaos kill, or a
// digest disagreement that proves this build expands specs differently.
func (w *worker) runAssignment(ctx context.Context, a *Assignment) error {
	if a.Spec == nil {
		return fmt.Errorf("campaign: assignment %s has no spec", a.Lease)
	}
	points, err := a.Spec.Points()
	if err != nil {
		return fmt.Errorf("campaign: assignment %s: %w", a.Lease, err)
	}
	if a.Point < 0 || a.Point >= len(points) {
		return fmt.Errorf("campaign: assignment %s: point %d outside %d-point spec", a.Lease, a.Point, len(points))
	}
	pt := points[a.Point]
	if pt.Digest != a.Digest {
		// Our expansion of the very spec the coordinator sent disagrees with
		// the digest it committed to. This build cannot produce results the
		// coordinator may accept; failing the lease lets another worker try.
		werr := fmt.Errorf("%w: local digest %s, coordinator expects %s",
			ErrDigestMismatch, shortHash(pt.Digest), shortHash(a.Digest))
		w.cl.Fail(a.Campaign, a.Lease, FailRequest{Outcome: "crashed", Error: werr.Error()}) //nolint:errcheck // already fatal
		return werr
	}
	cfg := pt.Config
	cfg.Workers = w.opts.Workers
	if a.Spec.EngineWorkers > 0 {
		// The spec pins the engine worker count for every point; it beats
		// this worker's own -workers setting. Either way the results are
		// bit-identical — only the wall-clock profile changes.
		cfg.Workers = a.Spec.EngineWorkers
	}

	if w.opts.Monitor != nil {
		digest := pt.Digest
		w.opts.Monitor.SetConfigDigest(func() string { return digest })
		defer w.opts.Monitor.SetConfigDigest(nil)
	}

	// Restore the migrated checkpoint when the coordinator holds one; fall
	// back to a fresh engine if the bytes are missing or unusable (the
	// coordinator validated them on upload, so this is belt and braces).
	var (
		eng         *sim.Engine
		resumedFrom int64
		restored    *sim.Snapshot
	)
	if a.HasCheckpoint {
		if data, err := w.cl.DownloadCheckpoint(a.Campaign, a.Point); err != nil {
			w.logf("point %d: checkpoint download failed, starting fresh: %v", a.Point, err)
		} else if snap, err := checkpoint.Decode(bytes.NewReader(data)); err != nil {
			w.logf("point %d: migrated checkpoint undecodable, starting fresh: %v", a.Point, err)
		} else if e, err := sim.RestoreEngine(cfg, snap); err != nil {
			w.logf("point %d: migrated checkpoint unusable, starting fresh: %v", a.Point, err)
		} else {
			eng, restored, resumedFrom = e, snap, snap.Now
			w.logf("point %d: resuming from migrated checkpoint at cycle %d", a.Point, snap.Now)
		}
	}
	if eng == nil {
		e, err := sim.New(cfg)
		if err != nil {
			w.cl.Fail(a.Campaign, a.Lease, FailRequest{Outcome: "crashed", Error: err.Error()}) //nolint:errcheck // best effort
			return nil
		}
		eng = e
	}
	defer eng.Close()

	reg := metrics.NewRegistry()
	eng.EnableMetrics(reg, sim.DefaultMetricsSampleEvery)
	if restored != nil && len(restored.Metrics) > 0 {
		if err := reg.Restore(restored.Metrics); err != nil {
			w.logf("point %d: metrics restore: %v", a.Point, err)
		}
	}

	// Heartbeat: renew the lease at a third of its TTL, carrying the last
	// checkpointed cycle and a live metrics snapshot. A 410 means the lease
	// was stolen — flag it so the checkpoint hook aborts the run.
	var (
		lastCycle atomic.Int64
		leaseLost atomic.Bool
	)
	lastCycle.Store(eng.Now())
	hbCtx, stopHeartbeat := context.WithCancel(context.Background())
	defer stopHeartbeat()
	interval := time.Duration(a.TTLMS) * time.Millisecond / 3
	if interval < 20*time.Millisecond {
		interval = 20 * time.Millisecond
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				err := w.cl.Renew(a.Campaign, a.Lease, RenewRequest{
					Cycle:   lastCycle.Load(),
					Metrics: reg.Snapshot(),
				})
				if errors.Is(err, ErrLeaseLost) {
					leaseLost.Store(true)
					return
				}
			}
		}
	}()

	spec := a.Spec
	rep := supervisor.Run(eng, supervisor.Options{
		WallBudget:      time.Duration(spec.PointWallMS) * time.Millisecond,
		StallWindow:     spec.StallWindow,
		CheckpointEvery: spec.CheckpointEvery,
		Signals:         w.opts.Signals,
		Checkpoint: func(e *sim.Engine) error {
			if leaseLost.Load() {
				return errLeaseRevoked
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			snap, err := e.Snapshot()
			if err != nil {
				return err
			}
			snap.Metrics = reg.Snapshot()
			var buf bytes.Buffer
			if err := checkpoint.Encode(&buf, snap); err != nil {
				return err
			}
			if err := w.cl.UploadCheckpoint(a.Campaign, a.Lease, buf.Bytes()); err != nil {
				return err
			}
			lastCycle.Store(e.Now())
			w.uploads++
			if w.opts.KillAfterUploads > 0 && w.uploads >= w.opts.KillAfterUploads {
				return errChaosKill
			}
			return nil
		},
	})
	stopHeartbeat()

	switch rep.Outcome {
	case supervisor.Completed:
		state := eng.Collector().State()
		err := w.cl.Complete(a.Campaign, a.Lease, CompleteRequest{
			Digest:      pt.Digest,
			Result:      rep.Result,
			Stats:       &state,
			Metrics:     reg.Snapshot(),
			ResumedFrom: resumedFrom,
		})
		switch {
		case errors.Is(err, ErrLeaseLost):
			// The point was stolen and (by determinism) committed with the
			// identical result, or will be. Our copy is redundant, not wrong.
			w.logf("point %d: completed but lease lost — result committed elsewhere", a.Point)
		case err != nil:
			w.logf("point %d: commit failed: %v", a.Point, err)
		default:
			w.logf("point %d (%s=%s): completed at cycle %d", a.Point, spec.Vary, pt.Raw, rep.EndCycle)
		}
		return nil

	case supervisor.Interrupted:
		// The supervisor already flushed a final checkpoint through our hook,
		// so the coordinator can migrate the point. Release the lease as
		// interrupted (no retry charged) and exit.
		w.cl.Fail(a.Campaign, a.Lease, FailRequest{Outcome: "interrupted", Error: "worker interrupted"}) //nolint:errcheck // exiting anyway
		w.logf("point %d: interrupted by %v at cycle %d, checkpoint migrated", a.Point, rep.Signal, rep.EndCycle)
		return fmt.Errorf("%w: %v", ErrWorkerInterrupted, rep.Signal)

	default:
		if errors.Is(rep.Err, errChaosKill) {
			// Simulated hard crash: say nothing to the coordinator. The lease
			// expires on its own and the point migrates via its checkpoint.
			w.logf("point %d: chaos kill after %d uploads at cycle %d", a.Point, w.uploads, rep.EndCycle)
			return ErrChaosKilled
		}
		if err := ctx.Err(); err != nil || errors.Is(rep.Err, context.Canceled) {
			if err == nil {
				err = context.Canceled
			}
			return err
		}
		if leaseLost.Load() || errors.Is(rep.Err, errLeaseRevoked) {
			w.logf("point %d: lease stolen at cycle %d, abandoning", a.Point, rep.EndCycle)
			return nil
		}
		msg := rep.Outcome.String()
		if rep.Err != nil {
			msg = rep.Err.Error()
		}
		w.cl.Fail(a.Campaign, a.Lease, FailRequest{Outcome: rep.Outcome.String(), Error: msg}) //nolint:errcheck // coordinator expires the lease anyway
		w.logf("point %d: %s at cycle %d: %s", a.Point, rep.Outcome, rep.EndCycle, msg)
		return nil
	}
}
