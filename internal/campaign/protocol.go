package campaign

// Wire types of the lease-based dispatch protocol between the coordinator
// and its workers. Everything is JSON over HTTP except checkpoint payloads,
// which travel as raw WNCP bytes (the checkpoint package's framed format —
// the coordinator stores and forwards them bit-exactly, so a migrated
// point resumes from the very bytes the dying worker flushed).

import (
	"wormnet/internal/metrics"
	"wormnet/internal/stats"
)

// ProtocolVersion guards the dispatch protocol itself; it travels in every
// acquire request next to the build version.
const ProtocolVersion = 1

// Acquire statuses.
const (
	// StatusWork: the response carries an assignment.
	AcquireWork = "work"
	// AcquireWait: no work right now (all points leased, or the
	// coordinator is draining); poll again with backoff.
	AcquireWait = "wait"
	// AcquireDone: every known campaign is terminal; a worker run with
	// exit-when-done stops cleanly.
	AcquireDone = "done"
)

// AcquireRequest asks the coordinator for a point lease.
type AcquireRequest struct {
	// Worker is the caller's stable name (shown in manifests and views).
	Worker string `json:"worker"`
	// Version is the worker's build version (obs.BuildVersion). The
	// coordinator rejects mismatches: mixed-version fleets cannot promise
	// bit-identical results.
	Version string `json:"version"`
	// Protocol is the worker's ProtocolVersion.
	Protocol int `json:"protocol"`
	// Campaign optionally pins the worker to one campaign.
	Campaign string `json:"campaign,omitempty"`
}

// Assignment is one granted lease.
type Assignment struct {
	Campaign string `json:"campaign"`
	Lease    string `json:"lease"`
	Point    int    `json:"point"`
	Value    string `json:"value"`
	// Attempt is the 1-based attempt number this grant represents.
	Attempt int `json:"attempt"`
	// TTLMS is the lease time-to-live in milliseconds; renew well within it.
	TTLMS int64 `json:"ttl_ms"`
	// Digest is the coordinator's sim.ConfigDigest for the point. The
	// worker recomputes it from Spec and must refuse the lease on mismatch;
	// Complete echoes it and the coordinator verifies once more.
	Digest string `json:"digest"`
	// HasCheckpoint reports that a migrated checkpoint is waiting: fetch
	// it and resume instead of starting from cycle zero.
	HasCheckpoint bool `json:"has_checkpoint"`
	// Spec is the campaign's full spec; the worker expands Point from it.
	Spec *Spec `json:"spec"`
}

// AcquireResponse is the coordinator's answer to an acquire.
type AcquireResponse struct {
	Status     string      `json:"status"` // work | wait | done
	Assignment *Assignment `json:"assignment,omitempty"`
}

// RenewRequest is a lease heartbeat with a live progress snapshot.
type RenewRequest struct {
	// Cycle is the engine's most recently checkpointed/observed cycle.
	Cycle int64 `json:"cycle"`
	// Metrics is the worker engine's current registry snapshot; the
	// coordinator folds it into the campaign's live metrics view.
	Metrics []metrics.Sample `json:"metrics,omitempty"`
}

// CompleteRequest commits a finished point.
type CompleteRequest struct {
	// Digest must equal the assignment's digest.
	Digest string       `json:"digest"`
	Result stats.Result `json:"result"`
	// Stats is the point's full collector state; the coordinator merges it
	// into the campaign-wide aggregate with stats.Collector.Merge.
	Stats *stats.CollectorState `json:"stats,omitempty"`
	// Metrics is the final engine registry snapshot, merged into the
	// campaign's metrics with metrics.Registry.Merge.
	Metrics []metrics.Sample `json:"metrics,omitempty"`
	// ResumedFrom is the cycle this attempt restored a migrated checkpoint
	// at (0 = ran from scratch).
	ResumedFrom int64 `json:"resumed_from,omitempty"`
}

// FailRequest reports a non-completed attempt. Outcome is the supervisor
// outcome string (stalled, deadline, crashed, interrupted).
type FailRequest struct {
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
}

// LeaseView is the status view of one active lease.
type LeaseView struct {
	Point     int    `json:"point"`
	Worker    string `json:"worker"`
	Lease     string `json:"lease"`
	Cycle     int64  `json:"cycle"`
	Attempt   int    `json:"attempt"`
	ExpiresMS int64  `json:"expires_ms"` // time until expiry (may be negative)
	// Progress is the fraction of the point's total cycles the worker had
	// reached at its last renew, in [0,1]. 0 until the first heartbeat.
	Progress float64 `json:"progress"`
}

// CampaignSummary is one row of the campaign list.
type CampaignSummary struct {
	ID        string `json:"id"`
	Vary      string `json:"vary"`
	Points    int    `json:"points"`
	Completed int    `json:"completed"`
	Done      bool   `json:"done"`
}

// StatusView is the live progress view of one campaign
// (GET /campaigns/{id}).
type StatusView struct {
	ID     string         `json:"id"`
	Done   bool           `json:"done"`
	Counts map[Status]int `json:"counts"`
	Points []PointRecord  `json:"points"`
	Leases []LeaseView    `json:"leases,omitempty"`
	// Progress is fractional campaign completion in [0,1]: terminal points
	// count 1 each, live leases count their last-renewed cycle fraction.
	Progress float64 `json:"progress"`
	// ElapsedMS is wall time since the campaign's first lease grant this
	// coordinator lifetime (0 before any grant).
	ElapsedMS int64 `json:"elapsed_ms"`
	// EtaMS extrapolates time to completion from the progress rate since
	// the first grant: elapsed * (1-progress)/progress. -1 when unknown
	// (no grant yet or no measurable progress), 0 once done.
	EtaMS int64 `json:"eta_ms"`
	// MergedResult aggregates the completed points' collectors
	// (stats.Collector.Merge): pooled latency statistics, summed counters,
	// per-run-averaged rates. Nil until a completed point shipped its
	// collector state this coordinator lifetime.
	MergedResult *stats.Result `json:"merged_result,omitempty"`
	// Metrics is the merged engine-metrics view: completed points'
	// registries plus the latest heartbeat snapshot of every live lease.
	Metrics map[string]any `json:"metrics,omitempty"`
}

// FarmView is the fleet-wide telemetry snapshot (GET /farm, streamed on
// GET /farm/events): every campaign's progress and every active worker.
type FarmView struct {
	Draining  bool               `json:"draining"`
	Campaigns []CampaignProgress `json:"campaigns"`
	Workers   []WorkerView       `json:"workers"`
	// Delivered/Admitted/Denied are fleet-wide message totals merged from
	// every campaign's engine metrics (completed points plus live leases).
	Delivered int64 `json:"delivered"`
	Admitted  int64 `json:"admitted"`
	Denied    int64 `json:"denied"`
}

// CampaignProgress is one campaign's row in the fleet view.
type CampaignProgress struct {
	ID        string  `json:"id"`
	Vary      string  `json:"vary"`
	Points    int     `json:"points"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	Running   int     `json:"running"`
	Progress  float64 `json:"progress"`
	ElapsedMS int64   `json:"elapsed_ms"`
	EtaMS     int64   `json:"eta_ms"` // -1 unknown, 0 done
	Done      bool    `json:"done"`
}

// WorkerView is one active lease seen fleet-wide: which worker holds which
// point of which campaign, and how far along it is.
type WorkerView struct {
	Worker    string  `json:"worker"`
	Campaign  string  `json:"campaign"`
	Point     int     `json:"point"`
	Value     string  `json:"value"`
	Cycle     int64   `json:"cycle"`
	Progress  float64 `json:"progress"`
	Attempt   int     `json:"attempt"`
	ExpiresMS int64   `json:"expires_ms"`
}
