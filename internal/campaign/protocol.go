package campaign

// Wire types of the lease-based dispatch protocol between the coordinator
// and its workers. Everything is JSON over HTTP except checkpoint payloads,
// which travel as raw WNCP bytes (the checkpoint package's framed format —
// the coordinator stores and forwards them bit-exactly, so a migrated
// point resumes from the very bytes the dying worker flushed).

import (
	"wormnet/internal/metrics"
	"wormnet/internal/stats"
)

// ProtocolVersion guards the dispatch protocol itself; it travels in every
// acquire request next to the build version.
const ProtocolVersion = 1

// Acquire statuses.
const (
	// StatusWork: the response carries an assignment.
	AcquireWork = "work"
	// AcquireWait: no work right now (all points leased, or the
	// coordinator is draining); poll again with backoff.
	AcquireWait = "wait"
	// AcquireDone: every known campaign is terminal; a worker run with
	// exit-when-done stops cleanly.
	AcquireDone = "done"
)

// AcquireRequest asks the coordinator for a point lease.
type AcquireRequest struct {
	// Worker is the caller's stable name (shown in manifests and views).
	Worker string `json:"worker"`
	// Version is the worker's build version (obs.BuildVersion). The
	// coordinator rejects mismatches: mixed-version fleets cannot promise
	// bit-identical results.
	Version string `json:"version"`
	// Protocol is the worker's ProtocolVersion.
	Protocol int `json:"protocol"`
	// Campaign optionally pins the worker to one campaign.
	Campaign string `json:"campaign,omitempty"`
}

// Assignment is one granted lease.
type Assignment struct {
	Campaign string `json:"campaign"`
	Lease    string `json:"lease"`
	Point    int    `json:"point"`
	Value    string `json:"value"`
	// Attempt is the 1-based attempt number this grant represents.
	Attempt int `json:"attempt"`
	// TTLMS is the lease time-to-live in milliseconds; renew well within it.
	TTLMS int64 `json:"ttl_ms"`
	// Digest is the coordinator's sim.ConfigDigest for the point. The
	// worker recomputes it from Spec and must refuse the lease on mismatch;
	// Complete echoes it and the coordinator verifies once more.
	Digest string `json:"digest"`
	// HasCheckpoint reports that a migrated checkpoint is waiting: fetch
	// it and resume instead of starting from cycle zero.
	HasCheckpoint bool `json:"has_checkpoint"`
	// Spec is the campaign's full spec; the worker expands Point from it.
	Spec *Spec `json:"spec"`
}

// AcquireResponse is the coordinator's answer to an acquire.
type AcquireResponse struct {
	Status     string      `json:"status"` // work | wait | done
	Assignment *Assignment `json:"assignment,omitempty"`
}

// RenewRequest is a lease heartbeat with a live progress snapshot.
type RenewRequest struct {
	// Cycle is the engine's most recently checkpointed/observed cycle.
	Cycle int64 `json:"cycle"`
	// Metrics is the worker engine's current registry snapshot; the
	// coordinator folds it into the campaign's live metrics view.
	Metrics []metrics.Sample `json:"metrics,omitempty"`
}

// CompleteRequest commits a finished point.
type CompleteRequest struct {
	// Digest must equal the assignment's digest.
	Digest string       `json:"digest"`
	Result stats.Result `json:"result"`
	// Stats is the point's full collector state; the coordinator merges it
	// into the campaign-wide aggregate with stats.Collector.Merge.
	Stats *stats.CollectorState `json:"stats,omitempty"`
	// Metrics is the final engine registry snapshot, merged into the
	// campaign's metrics with metrics.Registry.Merge.
	Metrics []metrics.Sample `json:"metrics,omitempty"`
	// ResumedFrom is the cycle this attempt restored a migrated checkpoint
	// at (0 = ran from scratch).
	ResumedFrom int64 `json:"resumed_from,omitempty"`
}

// FailRequest reports a non-completed attempt. Outcome is the supervisor
// outcome string (stalled, deadline, crashed, interrupted).
type FailRequest struct {
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
}

// LeaseView is the status view of one active lease.
type LeaseView struct {
	Point     int    `json:"point"`
	Worker    string `json:"worker"`
	Lease     string `json:"lease"`
	Cycle     int64  `json:"cycle"`
	Attempt   int    `json:"attempt"`
	ExpiresMS int64  `json:"expires_ms"` // time until expiry (may be negative)
}

// CampaignSummary is one row of the campaign list.
type CampaignSummary struct {
	ID        string `json:"id"`
	Vary      string `json:"vary"`
	Points    int    `json:"points"`
	Completed int    `json:"completed"`
	Done      bool   `json:"done"`
}

// StatusView is the live progress view of one campaign
// (GET /campaigns/{id}).
type StatusView struct {
	ID     string         `json:"id"`
	Done   bool           `json:"done"`
	Counts map[Status]int `json:"counts"`
	Points []PointRecord  `json:"points"`
	Leases []LeaseView    `json:"leases,omitempty"`
	// MergedResult aggregates the completed points' collectors
	// (stats.Collector.Merge): pooled latency statistics, summed counters,
	// per-run-averaged rates. Nil until a completed point shipped its
	// collector state this coordinator lifetime.
	MergedResult *stats.Result `json:"merged_result,omitempty"`
	// Metrics is the merged engine-metrics view: completed points'
	// registries plus the latest heartbeat snapshot of every live lease.
	Metrics map[string]any `json:"metrics,omitempty"`
}
