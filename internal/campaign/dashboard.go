package campaign

// The live fleet dashboard served on GET /dash. Deliberately dependency
// free: one self-contained HTML page, vanilla JS, an EventSource on
// /farm/events. It renders every campaign's progress bar and ETA, the
// active worker fleet, and the merged deny rate — enough to watch a sweep
// saturate (or not) in real time without attaching Prometheus or Grafana.

const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>wormnet farm</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; background: #0d1117; color: #e6edf3; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .3rem .7rem; border-bottom: 1px solid #30363d; }
  th { color: #8b949e; font-weight: 600; }
  .bar { background: #21262d; border-radius: 3px; width: 160px; height: 10px; display: inline-block; vertical-align: middle; }
  .bar > i { background: #3fb950; border-radius: 3px; height: 100%; display: block; }
  .muted { color: #8b949e; }
  .bad { color: #f85149; }
  #state { float: right; }
  #state.live { color: #3fb950; } #state.dead { color: #f85149; }
</style>
</head>
<body>
<h1>wormnet farm <span id="state" class="dead">connecting…</span></h1>
<div id="totals" class="muted"></div>
<h2>Campaigns</h2>
<table><thead><tr>
  <th>id</th><th>vary</th><th>points</th><th>done</th><th>failed</th><th>running</th>
  <th>progress</th><th>elapsed</th><th>eta</th>
</tr></thead><tbody id="campaigns"></tbody></table>
<h2>Workers</h2>
<table><thead><tr>
  <th>worker</th><th>campaign</th><th>point</th><th>value</th><th>cycle</th>
  <th>progress</th><th>attempt</th><th>lease</th>
</tr></thead><tbody id="workers"></tbody></table>
<script>
"use strict";
function fmtMS(ms) {
  if (ms < 0) return "—";
  if (ms === 0) return "0s";
  var s = Math.round(ms / 1000);
  if (s < 60) return s + "s";
  var m = Math.floor(s / 60);
  if (m < 60) return m + "m" + (s % 60) + "s";
  return Math.floor(m / 60) + "h" + (m % 60) + "m";
}
function bar(frac) {
  var pct = Math.max(0, Math.min(100, frac * 100));
  return '<span class="bar"><i style="width:' + pct.toFixed(1) + '%"></i></span> ' + pct.toFixed(1) + '%';
}
function esc(s) {
  return String(s).replace(/[&<>"]/g, function (c) {
    return { "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;" }[c];
  });
}
function render(farm) {
  var denyPct = 0, attempts = farm.admitted + farm.denied;
  if (attempts > 0) denyPct = 100 * farm.denied / attempts;
  document.getElementById("totals").textContent =
    "delivered " + farm.delivered + " · admitted " + farm.admitted +
    " · denied " + farm.denied + " (" + denyPct.toFixed(1) + "%)" +
    (farm.draining ? " · DRAINING" : "");
  var rows = "";
  (farm.campaigns || []).forEach(function (c) {
    rows += "<tr><td>" + esc(c.id) + "</td><td>" + esc(c.vary) + "</td><td>" + c.points +
      "</td><td>" + c.completed + "</td><td" + (c.failed ? ' class="bad"' : "") + ">" + c.failed +
      "</td><td>" + c.running + "</td><td>" + bar(c.progress) +
      "</td><td>" + fmtMS(c.elapsed_ms) + "</td><td>" + (c.done ? "done" : fmtMS(c.eta_ms)) +
      "</td></tr>";
  });
  document.getElementById("campaigns").innerHTML =
    rows || '<tr><td colspan="9" class="muted">no campaigns</td></tr>';
  rows = "";
  (farm.workers || []).forEach(function (w) {
    rows += "<tr><td>" + esc(w.worker) + "</td><td>" + esc(w.campaign) + "</td><td>" + w.point +
      "</td><td>" + esc(w.value) + "</td><td>" + w.cycle + "</td><td>" + bar(w.progress) +
      "</td><td>" + w.attempt + "</td><td>" + fmtMS(w.expires_ms) + "</td></tr>";
  });
  document.getElementById("workers").innerHTML =
    rows || '<tr><td colspan="8" class="muted">idle</td></tr>';
}
var state = document.getElementById("state");
var es = new EventSource("/farm/events");
es.onmessage = function (ev) {
  state.textContent = "live";
  state.className = "live";
  render(JSON.parse(ev.data));
};
es.onerror = function () {
  state.textContent = "disconnected";
  state.className = "dead";
};
</script>
</body>
</html>
`
