package campaign

// The campaign spec is the wire description of an experiment: a base engine
// configuration, one swept parameter and its values, plus robustness knobs
// (checkpoint cadence, budgets, retries). It is what a client POSTs to the
// coordinator and what cmd/sweep builds from its flags, so the local and
// distributed modes expand to exactly the same sweep points.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/fault"
	"wormnet/internal/sim"
	"wormnet/internal/topology"
)

// maxSpecBytes bounds the JSON a spec decoder will read.
const maxSpecBytes = 1 << 20

// maxSpecPoints bounds the sweep-point fan-out of one campaign.
const maxSpecPoints = 100_000

// Upper sanity bounds on decoded specs. The sim layer enforces minimums;
// the spec layer enforces maximums, so a hostile or fuzzed spec cannot make
// the coordinator (whose validation walks the topology) or a worker
// allocate an absurd engine.
const (
	maxRadix    = 64
	maxDims     = 6
	maxNodes    = 1 << 20
	maxVCs      = 64
	maxBufDepth = 4096
	maxMsgLen   = 1 << 16

	// maxEngineWorkers bounds Spec.EngineWorkers. The engine clamps shards
	// to the node count anyway; this only keeps a hostile spec from asking
	// every worker in the fleet to spawn an absurd goroutine pool.
	maxEngineWorkers = 64
)

// boundConfig rejects configurations beyond the supported maximums. Called
// per expanded point, after the swept value is applied and before anything
// walks the topology.
func boundConfig(cfg *sim.Config) error {
	switch {
	case cfg.K > maxRadix || cfg.N > maxDims:
		return fmt.Errorf("campaign: topology %d-ary %d-cube beyond supported %d-ary %d-cube",
			cfg.K, cfg.N, maxRadix, maxDims)
	case cfg.VCs > maxVCs:
		return fmt.Errorf("campaign: %d virtual channels beyond limit %d", cfg.VCs, maxVCs)
	case cfg.BufDepth > maxBufDepth:
		return fmt.Errorf("campaign: buffer depth %d beyond limit %d", cfg.BufDepth, maxBufDepth)
	case cfg.MsgLen > maxMsgLen:
		return fmt.Errorf("campaign: message length %d beyond limit %d", cfg.MsgLen, maxMsgLen)
	}
	nodes := 1
	for i := 0; i < cfg.N; i++ {
		nodes *= cfg.K
		if cfg.K > 0 && nodes > maxNodes {
			return fmt.Errorf("campaign: %d-ary %d-cube exceeds %d nodes", cfg.K, cfg.N, maxNodes)
		}
	}
	return nil
}

// Spec describes one campaign: a swept parameter over a base configuration.
// Zero-valued fields take the defaults of DefaultSpec, which mirror
// sim.DefaultConfig and cmd/sweep's flag defaults.
type Spec struct {
	// Vary names the swept parameter: rate, vcs, buf, threshold, msglen or
	// faults. Values holds the swept values as strings, exactly as they
	// would be passed to sweep -values.
	Vary   string   `json:"vary"`
	Values []string `json:"values"`

	// Limiter is the injection-limitation mechanism by name: none, lf,
	// dril, alo, alo-rule-a, alo-rule-b or alo-all-channels.
	Limiter string `json:"limiter"`

	// Base engine configuration (see sim.Config). No field is omitempty:
	// several zeros are legal values that differ from the defaults
	// (detection_threshold 0 disables detection, warmup_cycles 0 skips
	// warm-up), so the wire form always spells every field out and a
	// decoded spec round-trips exactly.
	K                  int     `json:"k"`
	N                  int     `json:"n"`
	VCs                int     `json:"vcs"`
	BufDepth           int     `json:"buf_depth"`
	Routing            string  `json:"routing"`
	Pattern            string  `json:"pattern"`
	MsgLen             int     `json:"msg_len"`
	Rate               float64 `json:"rate"`
	DetectionThreshold int32   `json:"detection_threshold"`
	WarmupCycles       int64   `json:"warmup_cycles"`
	MeasureCycles      int64   `json:"measure_cycles"`
	DrainCycles        int64   `json:"drain_cycles"`
	Seed               uint64  `json:"seed"`

	// Faults is the fraction of channels to fail in every point [0,1);
	// FaultSeed drives the fault planner. A "faults" sweep overrides the
	// fraction per point.
	Faults    float64 `json:"faults"`
	FaultSeed uint64  `json:"fault_seed"`

	// Robustness knobs, applied by whatever executes the points.
	CheckpointEvery int64 `json:"checkpoint_every"`
	StallWindow     int64 `json:"stall_window"`
	PointWallMS     int64 `json:"point_wall_ms"`
	Retries         int   `json:"point_retries"`

	// EngineWorkers, when > 0, fixes the engine goroutine count every point
	// runs with, overriding each worker's own -workers setting. 0 leaves the
	// choice to the worker. Results are bit-identical at any setting (the
	// worker count is excluded from config digests); this knob exists for
	// campaigns that want a uniform wall-clock profile across a
	// heterogeneous fleet.
	EngineWorkers int `json:"engine_workers"`
}

// UnmarshalJSON decodes a spec strictly over DefaultSpec: absent fields
// keep their defaults, unknown fields are errors (a typo'd knob silently
// falling back to a default would run the wrong experiment).
func (s *Spec) UnmarshalJSON(data []byte) error {
	type specAlias Spec // no methods: avoids recursing into UnmarshalJSON
	tmp := specAlias(DefaultSpec())
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tmp); err != nil {
		return err
	}
	*s = Spec(tmp)
	return nil
}

// DefaultSpec returns a spec whose base configuration matches
// sim.DefaultConfig and whose robustness knobs match cmd/sweep's defaults.
// Vary and Values are left empty — a runnable spec must set them.
func DefaultSpec() Spec {
	cfg := sim.DefaultConfig()
	return Spec{
		Limiter:            "alo",
		K:                  cfg.K,
		N:                  cfg.N,
		VCs:                cfg.VCs,
		BufDepth:           cfg.BufDepth,
		Routing:            cfg.Routing,
		Pattern:            cfg.Pattern,
		MsgLen:             cfg.MsgLen,
		Rate:               cfg.Rate,
		DetectionThreshold: cfg.DetectionThreshold,
		WarmupCycles:       cfg.WarmupCycles,
		MeasureCycles:      cfg.MeasureCycles,
		DrainCycles:        cfg.DrainCycles,
		Seed:               cfg.Seed,
		FaultSeed:          1,
		CheckpointEvery:    2000,
		Retries:            2,
	}
}

// DecodeSpec reads one JSON spec from r, strictly: unknown fields, trailing
// data and oversized documents are errors, and the decoded spec must expand
// to a valid point list. Absent fields take DefaultSpec's values.
func DecodeSpec(r io.Reader) (*Spec, error) {
	var spec Spec
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("campaign: decode spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaign: decode spec: trailing data after JSON document")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate checks the spec by expanding it: every point must resolve to a
// digestible engine configuration.
func (s *Spec) Validate() error {
	_, err := s.Points()
	return err
}

// BaseConfig resolves the spec's base engine configuration (before the
// swept value is applied).
func (s *Spec) BaseConfig() (sim.Config, error) {
	f, err := LimiterByName(s.Limiter)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig()
	cfg.K, cfg.N = s.K, s.N
	cfg.VCs, cfg.BufDepth = s.VCs, s.BufDepth
	cfg.Routing, cfg.Pattern = s.Routing, s.Pattern
	cfg.MsgLen, cfg.Rate = s.MsgLen, s.Rate
	cfg.DetectionThreshold = s.DetectionThreshold
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = s.WarmupCycles, s.MeasureCycles, s.DrainCycles
	cfg.Seed = s.Seed
	cfg.Limiter, cfg.LimiterName = f, s.Limiter
	return cfg, nil
}

// Point is one fully resolved sweep point.
type Point struct {
	Index  int
	Raw    string // the swept value as given
	Config sim.Config
	Digest string // sim.ConfigDigest of Config
}

// Points expands the spec into its sweep points, resolving one engine
// config (including the per-point fault plan) and one config digest per
// point. The expansion is deterministic: every caller — coordinator,
// workers, local sweep — derives bit-identical configurations.
func (s *Spec) Points() ([]Point, error) {
	switch {
	case len(s.Values) == 0:
		return nil, fmt.Errorf("campaign: spec has no values")
	case len(s.Values) > maxSpecPoints:
		return nil, fmt.Errorf("campaign: spec has %d values (limit %d)", len(s.Values), maxSpecPoints)
	case s.Faults < 0 || s.Faults >= 1:
		return nil, fmt.Errorf("campaign: fault fraction %v outside [0,1)", s.Faults)
	case s.CheckpointEvery < 0 || s.StallWindow < 0 || s.PointWallMS < 0 || s.Retries < 0:
		return nil, fmt.Errorf("campaign: negative robustness knob")
	case s.EngineWorkers < 0 || s.EngineWorkers > maxEngineWorkers:
		return nil, fmt.Errorf("campaign: engine_workers %d outside [0,%d]", s.EngineWorkers, maxEngineWorkers)
	}
	base, err := s.BaseConfig()
	if err != nil {
		return nil, err
	}
	points := make([]Point, 0, len(s.Values))
	for i, raw := range s.Values {
		raw = strings.TrimSpace(raw)
		run := base
		frac := s.Faults
		switch s.Vary {
		case "rate":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("campaign: value %q: %w", raw, err)
			}
			run.Rate = v
		case "vcs":
			v, err := strconv.Atoi(raw)
			if err != nil {
				return nil, fmt.Errorf("campaign: value %q: %w", raw, err)
			}
			run.VCs = v
		case "buf":
			v, err := strconv.Atoi(raw)
			if err != nil {
				return nil, fmt.Errorf("campaign: value %q: %w", raw, err)
			}
			run.BufDepth = v
		case "threshold":
			v, err := strconv.Atoi(raw)
			if err != nil {
				return nil, fmt.Errorf("campaign: value %q: %w", raw, err)
			}
			run.DetectionThreshold = int32(v)
		case "msglen":
			v, err := strconv.Atoi(raw)
			if err != nil {
				return nil, fmt.Errorf("campaign: value %q: %w", raw, err)
			}
			run.MsgLen = v
		case "faults":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("campaign: value %q: %w", raw, err)
			}
			frac = v
		default:
			return nil, fmt.Errorf("campaign: unknown vary %q", s.Vary)
		}
		if frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("campaign: point %d fault fraction %v outside [0,1)", i, frac)
		}
		if err := boundConfig(&run); err != nil {
			return nil, fmt.Errorf("point %d (%s): %w", i, raw, err)
		}
		if frac > 0 {
			if run.K < 2 || run.N < 1 {
				return nil, fmt.Errorf("campaign: bad topology %d-ary %d-cube", run.K, run.N)
			}
			sched, err := fault.Plan(topology.New(run.K, run.N),
				fault.Profile{LinkFraction: frac, Seed: s.FaultSeed})
			if err != nil {
				return nil, err
			}
			run.Faults = sched
		}
		digest, err := sim.ConfigDigest(run)
		if err != nil {
			return nil, fmt.Errorf("campaign: point %d (%s): %w", i, raw, err)
		}
		points = append(points, Point{Index: i, Raw: raw, Config: run, Digest: digest})
	}
	return points, nil
}

// ID derives the campaign's identity from the spec's canonical JSON: the
// same experiment always maps to the same id, making submission idempotent.
func (s *Spec) ID() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("campaign: marshal spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:6])
}

// LimiterByName resolves an injection-limiter factory, covering the
// baseline mechanisms (none, lf, dril, alo) and the ALO ablations.
func LimiterByName(name string) (core.Factory, error) {
	switch name {
	case "alo-rule-a":
		return core.NewRuleAOnly(), nil
	case "alo-rule-b":
		return core.NewRuleBOnly(), nil
	case "alo-all-channels":
		return core.NewAllChannels(), nil
	default:
		if f, ok := baseline.Factories()[name]; ok {
			return f, nil
		}
		return nil, fmt.Errorf("campaign: unknown limiter %q", name)
	}
}
