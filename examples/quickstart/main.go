// Quickstart: build a wormhole network simulation, run it, and read the
// paper's performance measures.
//
// This is the smallest end-to-end use of the library: an 8-ary 3-cube under
// uniform traffic at a moderate load, with the ALO injection-limitation
// mechanism protecting the network from saturation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wormnet/internal/core"
	"wormnet/internal/sim"
)

func main() {
	// Start from the paper's standard configuration (8-ary 3-cube, 3 VCs
	// with 4-flit buffers, TFAR routing, FC3D detection, software recovery)
	// and pick a workload.
	cfg := sim.DefaultConfig()
	cfg.Pattern = "uniform"
	cfg.MsgLen = 16
	cfg.Rate = 0.4 // flits/node/cycle offered
	cfg.Limiter, cfg.LimiterName = core.NewALO(), "alo"

	// Keep the quickstart fast: a shorter measurement window than the
	// evaluation harness uses.
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 1000, 4000, 500

	engine, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	result := engine.Run()

	fmt.Printf("simulated %s for %d cycles\n", engine.Topology(), cfg.TotalCycles())
	fmt.Printf("  average latency : %.1f cycles (std %.1f)\n", result.AvgLatency, result.StdLatency)
	fmt.Printf("  accepted traffic: %.4f flits/node/cycle (offered %.2f)\n", result.Accepted, cfg.Rate)
	fmt.Printf("  deadlocks       : %.3f%% of injected messages\n", result.DeadlockPct)
	fmt.Printf("  delivered       : %d messages in the measurement window\n", result.Delivered)

	// The collector exposes more detail than the summary: e.g. the latency
	// distribution.
	col := engine.Collector()
	fmt.Printf("  p99 latency     : <= %.0f cycles\n", col.Hist.Quantile(0.99))
	fmt.Printf("  min/max latency : %.0f / %.0f cycles\n", col.Latency.Min(), col.Latency.Max())
}
