// Patterns: ALO's defining property is that it adapts to the destination
// distribution without any tuning, because it inspects only the channels
// the routing function returns for each concrete message. This example runs
// the five traffic patterns from the paper (plus two extras) through the
// same untouched ALO configuration and shows it protects the network under
// every one of them.
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"log"

	"wormnet/internal/core"
	"wormnet/internal/sim"
	"wormnet/internal/traffic"
)

func main() {
	base := sim.DefaultConfig()
	base.K, base.N = 4, 3 // 64 nodes = 2^6: bit-permutation patterns apply
	base.MsgLen = 16
	base.Rate = 1.8 // well beyond saturation for every pattern
	base.Limiter, base.LimiterName = core.NewALO(), "alo"
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 1500, 6000, 500

	patterns := append(traffic.PaperPatterns(), "transpose", "tornado")

	fmt.Println("ALO under every traffic pattern (no per-pattern tuning):")
	fmt.Printf("%-16s %10s %10s %10s\n", "pattern", "accepted", "latency", "deadlk%")
	for _, p := range patterns {
		cfg := base
		cfg.Pattern = p
		e, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r := e.Run()
		fmt.Printf("%-16s %10.4f %10.1f %10.3f\n", p, r.Accepted, r.AvgLatency, r.DeadlockPct)
	}
	fmt.Println("\nEach pattern saturates at a different accepted level (complement")
	fmt.Println("crosses the bisection twice, so it sustains far less than uniform),")
	fmt.Println("but ALO holds every one at its plateau with a negligible deadlock")
	fmt.Println("rate — the threshold-free adaptivity the paper claims.")
}
