// Customlimiter: the injection-limitation mechanism is a small interface —
// implement core.Limiter (and optionally core.CycleObserver) to plug your
// own congestion-control policy into the simulator.
//
// This example implements a simple fixed-threshold limiter ("inject only if
// at least K useful virtual channels are free"), wires it into a run, and
// compares it with ALO. It demonstrates exactly why the paper's
// threshold-free design matters: the fixed threshold needs to be tuned per
// pattern, while ALO does not.
//
//	go run ./examples/customlimiter
package main

import (
	"fmt"
	"log"

	"wormnet/internal/core"
	"wormnet/internal/sim"
	"wormnet/internal/topology"
)

// fixedThreshold permits injection only while at least minFree of the
// message's useful virtual output channels are free. It is the kind of
// static mechanism the paper's related-work section criticises: a good
// value for one pattern is wrong for another.
type fixedThreshold struct {
	minFree int
}

// Allow implements core.Limiter.
func (l fixedThreshold) Allow(v core.ChannelView, dst topology.NodeID) bool {
	free := 0
	for _, p := range v.UsefulPorts(dst) {
		free += v.FreeVCs(p)
	}
	return free >= l.minFree
}

// Name implements core.Limiter.
func (l fixedThreshold) Name() string { return fmt.Sprintf("fixed>=%d", l.minFree) }

// newFixed returns a factory producing the same stateless limiter for every
// node.
func newFixed(minFree int) core.Factory {
	return func(topology.NodeID, *topology.Torus, int) core.Limiter {
		return fixedThreshold{minFree: minFree}
	}
}

func main() {
	base := sim.DefaultConfig()
	base.K, base.N = 4, 3
	base.MsgLen = 16
	base.Rate = 1.8 // beyond saturation
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 1500, 6000, 500

	limiters := []struct {
		name string
		f    core.Factory
	}{
		{"fixed>=2", newFixed(2)},
		{"fixed>=6", newFixed(6)},
		{"alo", core.NewALO()},
	}

	for _, pattern := range []string{"uniform", "butterfly"} {
		fmt.Printf("\npattern=%s (offered %.1f flits/node/cycle)\n", pattern, base.Rate)
		fmt.Printf("%-10s %10s %10s %10s\n", "limiter", "accepted", "latency", "deadlk%")
		for _, lim := range limiters {
			cfg := base.WithLimiter(lim.name, lim.f)
			cfg.Pattern = pattern
			e, err := sim.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			r := e.Run()
			fmt.Printf("%-10s %10.4f %10.1f %10.3f\n", lim.name, r.Accepted, r.AvgLatency, r.DeadlockPct)
		}
	}
	fmt.Println("\nA threshold tuned for uniform traffic (6 useful channels in 3")
	fmt.Println("dimensions) over- or under-throttles butterfly traffic (which only")
	fmt.Println("uses 2 dimensions); ALO needs no such tuning.")
}
