// Bursty: the paper's motivation (§1) is that real parallel applications
// produce *bursty* traffic whose peaks transiently saturate the network,
// and that saturation episodes inflate execution time long after the burst
// has passed. This example drives the network with on/off modulated sources
// whose long-run average load is safely below saturation but whose
// ON-period peak is far above it, and shows the delivered-traffic timeline
// with and without ALO.
//
//	go run ./examples/bursty
package main

import (
	"fmt"
	"log"
	"strings"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/sim"
	"wormnet/internal/traffic"
)

func main() {
	base := sim.DefaultConfig()
	base.K, base.N = 4, 3 // 64 nodes
	base.Pattern, base.MsgLen = "uniform", 16
	base.Rate = 0.7 // average load ~½ of saturation...
	// Synchronized phases model an application where all ranks communicate
	// together: ON-period peaks at 0.7*2.5 = 1.75 flits/node/cycle, beyond
	// the ~1.3 saturation point.
	base.Burst = traffic.BurstProfile{OnMean: 400, OffMean: 600, Synchronized: true}
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 0, 12000, 0

	fmt.Printf("bursty uniform traffic: average %.2f, peak %.2f flits/node/cycle\n\n",
		base.Rate, base.Rate*base.Burst.PeakFactor())

	for _, mech := range []struct {
		name string
		f    core.Factory
	}{
		{"none", baseline.NewNone()},
		{"alo", core.NewALO()},
	} {
		cfg := base.WithLimiter(mech.name, mech.f)
		e, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		series := e.Collector().EnableDeliverySeries(500, 24)
		r := e.Run()

		fmt.Printf("%s: accepted=%.4f latency=%.1f deadlocks=%.3f%%\n",
			mech.name, r.Accepted, r.AvgLatency, r.DeadlockPct)
		fmt.Println("delivered flits/node/cycle per 500-cycle interval:")
		nodes := float64(e.Topology().Nodes())
		for i := 0; i < series.Len(); i++ {
			rate := series.Rate(i) / nodes
			bar := strings.Repeat("#", int(rate*40))
			fmt.Printf("  [%5d-%5d] %.3f %s\n", i*500, (i+1)*500-1, rate, bar)
		}
		fmt.Println()
	}
	fmt.Println("Both timelines show the bursts; the difference is what happens")
	fmt.Println("inside them: without limitation the network crosses saturation,")
	fmt.Println("messages knot, the detector fires and delivery dips below the")
	fmt.Println("burst rate. ALO clips the injected peak at the sustainable level,")
	fmt.Println("so the backlog drains during the OFF periods instead.")
}
