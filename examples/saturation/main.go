// Saturation: reproduce the paper's motivating observation (Figure 1) on a
// small network — when offered traffic crosses the saturation point, an
// unprotected wormhole network degrades: latency explodes, accepted traffic
// collapses below the peak, and the deadlock detector starts firing. With
// the ALO injection limiter the accepted-traffic curve holds its plateau
// and deadlocks stay negligible.
//
//	go run ./examples/saturation
package main

import (
	"fmt"
	"log"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/sim"
)

func main() {
	base := sim.DefaultConfig()
	base.K, base.N = 4, 3 // 64 nodes: small enough to sweep quickly
	base.Pattern, base.MsgLen = "uniform", 16
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 1500, 6000, 500

	rates := []float64{0.2, 0.6, 1.0, 1.3, 1.6, 2.0}

	fmt.Println("offered | without limitation          | with ALO")
	fmt.Println("        | accepted  latency  deadlk%  | accepted  latency  deadlk%")
	for _, rate := range rates {
		none := run(base.WithLimiter("none", baseline.NewNone()).WithRate(rate))
		alo := run(base.WithLimiter("alo", core.NewALO()).WithRate(rate))
		fmt.Printf("%7.2f | %8.4f %8.1f %8.3f | %8.4f %8.1f %8.3f\n",
			rate,
			none.Accepted, none.AvgLatency, none.DeadlockPct,
			alo.Accepted, alo.AvgLatency, alo.DeadlockPct)
	}
	fmt.Println("\nReading the table: past the saturation knee the unprotected")
	fmt.Println("network's accepted traffic falls below its peak while detected")
	fmt.Println("deadlocks climb; ALO pins accepted traffic at the plateau and")
	fmt.Println("keeps the deadlock rate near zero. Latency beyond saturation is")
	fmt.Println("unbounded for both (queues grow), which is why the paper plots")
	fmt.Println("latency against accepted rather than offered traffic.")
}

func run(cfg sim.Config) (r struct {
	Accepted, AvgLatency, DeadlockPct float64
}) {
	e, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := e.Run()
	r.Accepted, r.AvgLatency, r.DeadlockPct = res.Accepted, res.AvgLatency, res.DeadlockPct
	return r
}
