// Fairness: reproduce the paper's Figure 4 comparison on a small network —
// when the network operates beyond saturation, how evenly do the three
// injection-limitation mechanisms share the injection bandwidth across
// nodes?
//
// The paper's finding: ALO keeps every node within a few percent of the
// mean; LF spreads up to ~20%; DRIL starves some nodes outright (60-80%
// fewer messages) because nodes freeze their thresholds at different
// moments.
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/sim"
)

func main() {
	base := sim.DefaultConfig()
	base.K, base.N = 4, 3 // 64 nodes
	base.Pattern, base.MsgLen = "uniform", 64
	base.Rate = 1.6 // beyond saturation, so the limiters are binding
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 2000, 20000, 500

	mechanisms := []struct {
		name string
		f    core.Factory
	}{
		{"lf", baseline.NewLF()},
		{"dril", baseline.NewDRIL()},
		{"alo", core.NewALO()},
	}

	fmt.Println("per-node injection deviation from the mean (sorted, in %):")
	for _, m := range mechanisms {
		e, err := sim.New(base.WithLimiter(m.name, m.f))
		if err != nil {
			log.Fatal(err)
		}
		res := e.Run()
		devs := e.Collector().Fairness().SortedDeviations()
		fmt.Printf("\n%-5s accepted=%.4f flits/node/cycle\n ", m.name, res.Accepted)
		for i, d := range devs {
			fmt.Printf("%7.1f", d)
			if (i+1)%8 == 0 {
				fmt.Print("\n ")
			}
		}
		fmt.Printf("\n spread: %.1f%% .. %+.1f%%\n", res.WorstNodeDev, res.BestNodeDev)
	}
}
