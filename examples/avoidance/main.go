// Avoidance: the paper's opening claim is that *both* deadlock-handling
// strategies — avoidance (restricted routing with escape channels) and
// recovery (unrestricted routing with detection + recovery) — degrade when
// the network saturates, and that injection limitation fixes both. This
// example runs the two regimes with and without ALO beyond the saturation
// point.
//
//   - recovery  = TFAR routing + FC3D detection + software recovery
//
//   - avoidance = Duato's protocol (adaptive VCs + dateline escape VCs)
//
//     go run ./examples/avoidance
package main

import (
	"fmt"
	"log"

	"wormnet/internal/baseline"
	"wormnet/internal/core"
	"wormnet/internal/sim"
)

func main() {
	base := sim.DefaultConfig()
	base.K, base.N = 4, 3 // 64 nodes
	base.Pattern, base.MsgLen = "complement", 16
	base.Rate = 1.2 // beyond saturation (complement saturates ~0.75)
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 1500, 6000, 500

	fmt.Printf("complement traffic, offered %.1f flits/node/cycle (beyond saturation)\n\n", base.Rate)
	fmt.Printf("%-28s %10s %10s %10s\n", "configuration", "accepted", "latency", "deadlk%")
	for _, row := range []struct {
		label   string
		routing string
		limName string
		lim     core.Factory
	}{
		{"recovery (tfar), none", "tfar", "none", baseline.NewNone()},
		{"recovery (tfar), alo", "tfar", "alo", core.NewALO()},
		{"avoidance (duato), none", "duato", "none", baseline.NewNone()},
		{"avoidance (duato), alo", "duato", "alo", core.NewALO()},
	} {
		cfg := base.WithLimiter(row.limName, row.lim)
		cfg.Routing = row.routing
		e, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		r := e.Run()
		fmt.Printf("%-28s %10.4f %10.1f %10.3f\n",
			row.label, r.Accepted, r.AvgLatency, r.DeadlockPct)
	}
	fmt.Println("\nWith avoidance nothing ever deadlocks (deadlk% is 0 by")
	fmt.Println("construction), but beyond saturation messages crawl through the")
	fmt.Println("escape network and sustained throughput sits below the adaptive")
	fmt.Println("regime's. On a 64-node network the saturation collapse is mild —")
	fmt.Println("blocking cycles are short and recovery churns through them; at")
	fmt.Println("the paper's 512-node scale the unthrottled recovery regime loses")
	fmt.Println("~20% of its peak throughput while ALO holds the plateau (see")
	fmt.Println("EXPERIMENTS.md, Figure 1/5).")
}
